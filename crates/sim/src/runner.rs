//! The MPI replay driver: rank processes advancing through trace events
//! (and lowered collective schedules) on the discrete-event engine.

use crate::error::SimError;
use crate::hash::IntMap;
use crate::lower::{coll_tag, lower, Schedule};
use crate::msg::{Mailbox, Message, MsgSlab};
use crate::net::{
    flow_complete, inject, on_flow_resolve, packet_hop, ForeignPacket, LinkTable, ModelKind,
    NetState, Packet, RouteArena,
};
use masim_des::{Engine, Handler};
use masim_obs::MetricSet;
use masim_topo::{LinkId, Machine, Mapping};
use masim_trace::{Event, EventKind, Rank, RankCursor, StreamedTrace, Time, Trace};
use std::time::{Duration, Instant};

/// Simulation configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Target machine (topology + network scalars).
    pub machine: Machine,
    /// Rank→node placement.
    pub mapping: Mapping,
    /// Which network model to run.
    pub model: ModelKind,
    /// Computation-time multiplier.
    pub compute_scale: f64,
    /// Test shim: schedule every packet of a message at injection time
    /// (the pre-lazy-injection behaviour) instead of chaining packets
    /// at their injection-link departures. Reservation math is
    /// identical; the equivalence suite runs both paths and asserts
    /// bit-identical predictions.
    #[doc(hidden)]
    pub eager_packets: bool,
    /// Worker threads for intra-trace parallel simulation. `1` (the
    /// default) runs the sequential engine exactly as before; `N > 1`
    /// partitions the packet model into logical processes on the
    /// conservative windowed executor (`crates/des`'s `WindowedPdes`)
    /// with up to `N` workers. The partition count is fixed by the
    /// topology, not by this knob, so any `N > 1` produces bit-identical
    /// predictions. Models other than `Packet` (and machines without a
    /// positive hop latency) always run sequentially.
    pub sim_threads: usize,
    /// Resident-byte cap on the interned-route arena; interning past it
    /// is a typed [`SimError::RouteArenaExhausted`]. `u64::MAX` (the
    /// default) leaves only the arena's structural limits (u32 route
    /// ids, u16 hops) in force.
    pub route_arena_cap_bytes: u64,
}

impl SimConfig {
    /// Default configuration: block mapping (as the original runs used)
    /// at the trace's recorded ranks-per-node, unit compute scale.
    pub fn new(machine: Machine, model: ModelKind, trace: &Trace) -> SimConfig {
        SimConfig::for_ranks(machine, model, trace.num_ranks(), trace.meta.ranks_per_node)
    }

    /// Like [`SimConfig::new`] for a trace that stays on disk: the block
    /// mapping comes from the stream's recorded metadata, so the full
    /// event vectors never need materializing just to build a config.
    pub fn for_streamed(machine: Machine, model: ModelKind, stream: &StreamedTrace) -> SimConfig {
        SimConfig::for_ranks(machine, model, stream.num_ranks(), stream.meta().ranks_per_node)
    }

    fn for_ranks(machine: Machine, model: ModelKind, ranks: u32, per_node: u32) -> SimConfig {
        SimConfig {
            machine,
            mapping: Mapping::block(ranks, per_node),
            model,
            compute_scale: 1.0,
            eager_packets: false,
            sim_threads: 1,
            route_arena_cap_bytes: u64::MAX,
        }
    }
}

/// Resource limits for one simulation run: a deterministic work budget
/// and an optional wall-clock deadline, both checked at the same cadence
/// in the run loop. The budget is what makes study results reproducible
/// (it counts simulated work); the deadline is a host-level safety net
/// for interactive and CI use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimLimits {
    /// Work budget (DES events + model work units). `u64::MAX` for
    /// unlimited.
    pub max_work: u64,
    /// Optional wall-clock deadline on this host.
    pub deadline: Option<Duration>,
    /// Memory budget: estimated resident bytes of the simulation state
    /// (trace, route arena, link tables, message slab, model state),
    /// checked at the same cadence as the work budget on the sequential
    /// engine and before/after the run on the partitioned executor.
    /// Exceeding it is a typed [`SimError::MemoryBudget`] instead of an
    /// allocator abort. `u64::MAX` for unlimited.
    pub max_bytes: u64,
}

impl SimLimits {
    /// A pure work budget, no deadline or memory cap.
    pub fn budget(max_work: u64) -> SimLimits {
        SimLimits { max_work, deadline: None, max_bytes: u64::MAX }
    }

    /// No limits at all.
    pub fn unlimited() -> SimLimits {
        SimLimits { max_work: u64::MAX, deadline: None, max_bytes: u64::MAX }
    }

    /// This limit set with a memory budget of `max_bytes`.
    pub fn with_memory_budget(self, max_bytes: u64) -> SimLimits {
        SimLimits { max_bytes, ..self }
    }
}

/// Simulation outcome.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Model that produced this result.
    pub model: ModelKind,
    /// Predicted application time (slowest rank).
    pub total: Time,
    /// Per-rank finish times.
    pub per_rank: Vec<Time>,
    /// Predicted communication time summed over ranks (finish − scaled
    /// computation).
    pub comm_time: Time,
    /// DES events executed.
    pub events: u64,
    /// Point-to-point messages injected (including lowered collectives).
    pub messages: u64,
    /// Model work units (packets routed, or flow-rate re-solves).
    pub work_units: u64,
    /// Busiest directed link's total bytes (contention indicator).
    pub max_link_bytes: u64,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum PStatus {
    Idle,
    Computing,
    BlockedSend,
    BlockedRecv,
    Waiting,
    CollRound,
    Done,
}

struct CollExec {
    /// Index into [`SimState::coll_scheds`] (schedules are cached and
    /// shared across identical collective invocations).
    sched_idx: u32,
    round: usize,
    ordinal: u32,
}

/// Outstanding nonblocking requests for one rank: (id, completed).
/// A rank keeps at most a handful in flight, so an unsorted vec with
/// linear scans beats a hash map — no hashing, no per-request
/// allocation once the buffer has warmed, and removal is a tail swap
/// (order is irrelevant; every access is keyed).
#[derive(Default, Debug)]
struct ReqSet {
    reqs: Vec<(u32, bool)>,
}

impl ReqSet {
    /// Completion state of `id`, if issued.
    fn get(&self, id: u32) -> Option<bool> {
        self.reqs.iter().find(|(rid, _)| *rid == id).map(|&(_, done)| done)
    }

    /// Record `id` as issued (overwriting a stale duplicate).
    fn insert(&mut self, id: u32, done: bool) {
        match self.reqs.iter_mut().find(|(rid, _)| *rid == id) {
            Some(slot) => slot.1 = done,
            None => self.reqs.push((id, done)),
        }
    }

    /// Mark `id` complete if it is still outstanding.
    fn set_done(&mut self, id: u32) {
        if let Some(slot) = self.reqs.iter_mut().find(|(rid, _)| *rid == id) {
            slot.1 = true;
        }
    }

    /// Retire `id`, returning its completion state.
    fn remove(&mut self, id: u32) -> Option<bool> {
        let idx = self.reqs.iter().position(|(rid, _)| *rid == id)?;
        Some(self.reqs.swap_remove(idx).1)
    }
}

struct Proc {
    cursor: usize,
    status: PStatus,
    /// Application nonblocking requests: id → completed?
    reqs: ReqSet,
    /// Requests a `Wait`/`WaitAll` is currently blocked on.
    wait_set: Vec<u32>,
    coll: Option<CollExec>,
    coll_count: u32,
    /// Outstanding receives + send releases in the current collective
    /// round.
    round_pending: u32,
    compute_total: Time,
    finish: Time,
    blocked_send_msg: u32,
}

impl Proc {
    fn new() -> Proc {
        Proc {
            cursor: 0,
            status: PStatus::Idle,
            reqs: ReqSet::default(),
            wait_set: Vec::new(),
            coll: None,
            coll_count: 0,
            round_pending: 0,
            compute_total: Time::ZERO,
            finish: Time::ZERO,
            blocked_send_msg: 0,
        }
    }
}

/// What a sender-release event means for the source rank.
enum RelPurpose {
    BlockingSend(Rank),
    AppReq(Rank, u32),
    CollRound(Rank),
}

/// The typed DES event vocabulary of the replay (the engine's
/// `S::Event`). One variant per closure shape the old engine boxed; the
/// payloads are small `Copy` values — message ids into the
/// [`MsgSlab`], [`RouteRef`](crate::net::RouteRef)s into the route
/// arena — slab-allocated inline in the engine's event arena with no
/// `Drop` glue (asserted by `sim_event_is_copy_and_small`).
#[derive(Clone, Copy)]
pub enum SimEvent {
    /// (Re)start rank `r`'s replay loop (initial seed).
    Advance(Rank),
    /// Rank `r` finished a compute burst.
    ComputeDone(Rank),
    /// Sender may reuse its buffer (message fully injected / drained).
    Release {
        /// Source rank (for symmetry with `Deliver`; the release table
        /// is keyed by message id).
        src: Rank,
        /// Message slab id.
        msg: u32,
    },
    /// A message's payload reached its destination rank.
    Deliver {
        /// Destination rank.
        dst: Rank,
        /// Source rank.
        src: Rank,
        /// Matching tag.
        tag: u32,
        /// Message slab id.
        msg: u32,
    },
    /// A packet crosses its next route link (packet model only).
    PacketHop(Packet),
    /// Batched max-min rate re-solve (flow model only).
    FlowResolve,
    /// A fluid flow drained (flow model only); the message id guards
    /// against stale completions for a recycled slab slot.
    FlowComplete {
        /// Flow slab slot.
        slot: u32,
        /// Message slab id occupying the slot when scheduled.
        msg: u32,
    },
}

impl<'a> Handler for SimState<'a> {
    type Event = SimEvent;

    fn handle(eng: &mut Engine<Self>, st: &mut Self, ev: SimEvent) {
        match ev {
            SimEvent::FlowResolve => on_flow_resolve(eng, st),
            SimEvent::FlowComplete { slot, msg } => flow_complete(eng, st, slot, msg),
            ev => dispatch(eng, st, ev),
        }
    }
}

/// Scheduling context the replay logic runs against: either the
/// sequential [`Engine`] or one logical process of the partitioned
/// executor ([`crate::pdes_run`]). The replay functions — `advance`,
/// collective rounds, matching, the packet model — are generic over
/// this trait, so both execution paths interpret trace events through
/// the same monomorphized code; the partitioned path differs only in
/// where follow-up events are routed.
pub(crate) trait SimCx {
    /// Current simulated time (the executing event's timestamp).
    fn now(&self) -> Time;

    /// Schedule a rank-addressed event at absolute time `at`. Every
    /// plain `SimEvent` is local to the partition of the rank it names
    /// (ranks own their NIC links, mailboxes, and process state); only
    /// packet hops ever cross partitions, via [`SimCx::sched_hop`].
    fn sched_at(&mut self, at: Time, ev: SimEvent);

    /// Schedule after `delay` from now, latching a typed clock-overflow
    /// error (instead of panicking) if `now + delay` wraps.
    fn sched_in(&mut self, delay: Time, ev: SimEvent);

    /// Schedule packet `pkt`'s traversal of `next_link` at `at`. The
    /// partitioned context routes this to the link owner's LP, demoting
    /// the packet to its partition-independent representation when it
    /// leaves home; the sequential engine just enqueues the hop.
    fn sched_hop(&mut self, at: Time, pkt: Packet, next_link: LinkId, m: &Message);

    /// Forward an already-foreign packet to `next_link`'s owner.
    /// Unreachable under sequential execution — a packet only becomes
    /// foreign by crossing a partition boundary.
    fn sched_foreign(&mut self, at: Time, fp: ForeignPacket, next_link: LinkId);
}

impl<'a> SimCx for Engine<SimState<'a>> {
    #[inline]
    fn now(&self) -> Time {
        Engine::now(self)
    }

    #[inline]
    fn sched_at(&mut self, at: Time, ev: SimEvent) {
        self.schedule_at(at, ev);
    }

    #[inline]
    fn sched_in(&mut self, delay: Time, ev: SimEvent) {
        self.schedule_in(delay, ev);
    }

    #[inline]
    fn sched_hop(&mut self, at: Time, pkt: Packet, _next_link: LinkId, _m: &Message) {
        self.schedule_at(at, SimEvent::PacketHop(pkt));
    }

    fn sched_foreign(&mut self, _at: Time, _fp: ForeignPacket, _next_link: LinkId) {
        unreachable!("foreign packets exist only under partitioned execution")
    }
}

/// Interpret one replay event against a generic scheduling context.
/// The flow models stay engine-only (their resolver cancels pending
/// events, which the windowed executor does not support), so the
/// partitioned path dispatches the packet-model vocabulary only.
pub(crate) fn dispatch<'a, C: SimCx>(cx: &mut C, st: &mut SimState<'a>, ev: SimEvent) {
    match ev {
        SimEvent::Advance(r) => advance(cx, st, r),
        SimEvent::ComputeDone(r) => {
            st.procs[r.idx()].status = PStatus::Idle;
            advance(cx, st, r);
        }
        SimEvent::Release { src, msg } => on_release(cx, st, src, msg),
        SimEvent::Deliver { dst, src, tag, msg } => on_deliver(cx, st, dst, src, tag, msg),
        SimEvent::PacketHop(pkt) => packet_hop(cx, st, pkt),
        SimEvent::FlowResolve | SimEvent::FlowComplete { .. } => {
            unreachable!("flow models run on the sequential engine only")
        }
    }
}

/// Where the replay reads its events from: a fully materialized
/// [`Trace`] (the study corpus path) or an on-disk [`StreamedTrace`]
/// decoded per rank through a small sliding window (the mega-scale
/// path, which never builds the per-rank `Vec<Event>`s).
#[derive(Clone, Copy)]
pub(crate) enum TraceSource<'a> {
    /// In-memory trace.
    Memory(&'a Trace),
    /// Compact on-disk trace, decoded incrementally.
    Streamed(&'a StreamedTrace),
}

impl<'a> TraceSource<'a> {
    pub(crate) fn num_ranks(&self) -> u32 {
        match self {
            TraceSource::Memory(t) => t.num_ranks(),
            TraceSource::Streamed(s) => s.num_ranks(),
        }
    }

    /// Estimated resident bytes of the event data itself: decoded
    /// vectors for a memory trace, the compact encoded buffer for a
    /// streamed one (its per-rank decode windows are O(1)).
    fn resident_bytes(&self) -> u64 {
        match self {
            TraceSource::Memory(t) => {
                t.events.iter().map(|v| v.capacity() * std::mem::size_of::<Event>()).sum::<usize>()
                    as u64
            }
            TraceSource::Streamed(s) => s.resident_bytes(),
        }
    }
}

/// A fetched trace event: borrowed straight from an in-memory trace, or
/// cloned out of a streamed rank's decode window (the window is `&mut`,
/// so the borrow cannot be held across the replay's re-entrant match
/// arms). `Deref`s to [`Event`] so the replay reads both identically.
pub(crate) enum Ev<'e> {
    /// Borrowed from an in-memory trace.
    Ref(&'e Event),
    /// Cloned from a streamed decode window.
    Owned(Event),
}

impl std::ops::Deref for Ev<'_> {
    type Target = Event;

    fn deref(&self) -> &Event {
        match self {
            Ev::Ref(e) => e,
            Ev::Owned(e) => e,
        }
    }
}

/// The shared simulation state (the DES engine's `S`).
pub struct SimState<'a> {
    pub(crate) machine: Machine,
    pub(crate) mapping: Mapping,
    pub(crate) net: NetState,
    pub(crate) links: LinkTable,
    /// Interned (src rank, dst rank) → virtual-link routes; in-flight
    /// packets and flows hold `RouteRef`s into this arena.
    pub(crate) routes: RouteArena,
    /// Id-indexed message table; event payloads carry `u32` ids into it.
    pub(crate) msgs: MsgSlab,
    trace: TraceSource<'a>,
    /// Per-rank streaming decode windows (empty for a memory trace).
    cursors: Vec<RankCursor<'a>>,
    /// Event-data resident bytes, cached at build time (constant for
    /// the run; summing per-rank capacities at 100k ranks is not free).
    trace_bytes: u64,
    procs: Vec<Proc>,
    mailboxes: Vec<Mailbox>,
    /// Release purposes indexed by message id (ids are sequential).
    releases: Vec<Option<RelPurpose>>,
    compute_scale: f64,
    messages: u64,
    done: usize,
    /// Lowered collective schedules, interned by
    /// `(kind, rank, bytes, root)`: iterative apps re-issue identical
    /// collectives every iteration, so each unique signature lowers
    /// once and replays from the cache.
    coll_scheds: Vec<Schedule>,
    /// Signature → index into `coll_scheds`.
    coll_cache: IntMap<(u8, u32, u64, u32), u32>,
    /// Reusable copy-out buffers for the collective round being
    /// executed (the cached schedule cannot stay borrowed across
    /// `send_message`, which needs `&mut self`).
    scr_recvs: Vec<(Rank, u64)>,
    scr_sends: Vec<(Rank, u64)>,
    /// Nanoseconds spent lowering collectives (profiled only when
    /// telemetry is attached; stays zero — and syscall-free — otherwise).
    /// With the schedule cache, this times unique lowerings, not every
    /// collective event.
    lower_ns: u64,
    /// Gate for the lowering profile above.
    profile_lower: bool,
    /// First typed error latched mid-run (e.g. a wait on an unknown
    /// request); reported by `sim_core` once the queue drains.
    error: Option<SimError>,
}

// Receive-token encoding: rank in the high 32 bits, purpose below.
const TOKEN_BLOCKING: u32 = u32::MAX;
const TOKEN_COLL: u32 = 0x8000_0000;

fn token(rank: Rank, code: u32) -> u64 {
    ((rank.0 as u64) << 32) | code as u64
}

impl<'a> SimState<'a> {
    pub(crate) fn new(trace: TraceSource<'a>, cfg: &SimConfig) -> Result<SimState<'a>, SimError> {
        let ranks = trace.num_ranks();
        let n = ranks as usize;
        if cfg.mapping.ranks() != ranks {
            return Err(SimError::InvalidConfig {
                reason: format!(
                    "mapping/trace rank mismatch: mapping has {} ranks, trace has {}",
                    cfg.mapping.ranks(),
                    ranks
                ),
            });
        }
        if let Err(e) = cfg.mapping.validate_for(&cfg.machine) {
            return Err(SimError::InvalidConfig {
                reason: format!("mapping does not fit machine {}: {e}", cfg.machine.name),
            });
        }
        let links = LinkTable::new(&cfg.machine, ranks);
        let mut net = NetState::new(cfg.model, links.len());
        if cfg.eager_packets {
            net.set_eager_packets();
        }
        let mut routes = RouteArena::new(ranks);
        routes.set_cap_bytes(cfg.route_arena_cap_bytes);
        let cursors = match trace {
            TraceSource::Memory(_) => Vec::new(),
            TraceSource::Streamed(s) => (0..ranks).map(|r| s.cursor(Rank(r))).collect(),
        };
        Ok(SimState {
            machine: cfg.machine.clone(),
            mapping: cfg.mapping.clone(),
            net,
            links,
            routes,
            msgs: MsgSlab::default(),
            trace_bytes: trace.resident_bytes(),
            trace,
            cursors,
            procs: (0..n).map(|_| Proc::new()).collect(),
            mailboxes: (0..n).map(|_| Mailbox::default()).collect(),
            releases: Vec::new(),
            compute_scale: cfg.compute_scale,
            messages: 0,
            done: 0,
            coll_scheds: Vec::new(),
            coll_cache: IntMap::default(),
            scr_recvs: Vec::new(),
            scr_sends: Vec::new(),
            lower_ns: 0,
            profile_lower: false,
            error: None,
        })
    }

    fn send_message<C: SimCx>(
        &mut self,
        cx: &mut C,
        src: Rank,
        dst: Rank,
        bytes: u64,
        tag: u32,
        purpose: RelPurpose,
    ) -> u32 {
        self.messages += 1;
        // Zero-byte MPI messages still cross the wire as a header.
        let id = self.msgs.push(Message { src, dst, bytes: bytes.max(1), tag });
        debug_assert_eq!(id as usize, self.releases.len());
        self.releases.push(Some(purpose));
        inject(cx, self, id);
        id
    }

    // Accessors for the partitioned runner (`crate::pdes_run`), which
    // owns one `SimState` per logical process and assembles the final
    // `SimResult` from the rank-owning slices.

    pub(crate) fn set_profile_lower(&mut self, on: bool) {
        self.profile_lower = on;
    }

    pub(crate) fn messages(&self) -> u64 {
        self.messages
    }

    pub(crate) fn done_count(&self) -> usize {
        self.done
    }

    pub(crate) fn rank_done(&self, r: Rank) -> bool {
        self.procs[r.idx()].status == PStatus::Done
    }

    pub(crate) fn finish_of(&self, r: Rank) -> Time {
        self.procs[r.idx()].finish
    }

    /// Rank `r`'s communication time: finish minus scaled compute.
    pub(crate) fn comm_of(&self, r: Rank) -> Time {
        let p = &self.procs[r.idx()];
        p.finish.saturating_sub(p.compute_total)
    }

    pub(crate) fn take_error(&mut self) -> Option<SimError> {
        self.error.take()
    }

    /// Latch the first typed mid-run error; `sim_core` reports it with
    /// priority over the deadlock the stalled rank would otherwise
    /// surface as. Later errors are dropped — the first cause wins.
    pub(crate) fn latch_error(&mut self, e: SimError) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }

    pub(crate) fn lower_ns(&self) -> u64 {
        self.lower_ns
    }

    /// Event `k` of rank `r`'s trace, if it exists. Borrowed directly
    /// from a memory trace; cloned out of the rank's streaming decode
    /// window otherwise (the replay only ever reads the current event or
    /// re-reads it after a wake, which the window supports).
    fn fetch_event(&mut self, r: Rank, k: usize) -> Option<Ev<'a>> {
        match self.trace {
            TraceSource::Memory(t) => t.events[r.idx()].get(k).map(Ev::Ref),
            TraceSource::Streamed(_) => self.cursors[r.idx()].get(k).map(|e| Ev::Owned(e.clone())),
        }
    }

    /// Estimated resident bytes of the simulation state: event data,
    /// interned routes, link tables, message slab, and network-model
    /// vectors. An estimate of the dominant allocations, not an
    /// allocator census — it is what [`SimLimits::max_bytes`] meters.
    pub(crate) fn resident_bytes(&self) -> u64 {
        self.trace_bytes
            + self.routes.bytes()
            + self.links.resident_bytes()
            + (self.msgs.len() * std::mem::size_of::<Message>()) as u64
            + self.net.resident_bytes()
    }

    /// The trace-data share of [`SimState::resident_bytes`]. The
    /// partitioned runner's LPs borrow the *same* trace, so its summed
    /// accounting must count this part once, not per LP.
    pub(crate) fn trace_resident_bytes(&self) -> u64 {
        self.trace_bytes
    }
}

/// Advance rank `r` until it blocks or finishes.
pub(crate) fn advance<'a, C: SimCx>(cx: &mut C, st: &mut SimState<'a>, r: Rank) {
    loop {
        debug_assert_eq!(st.procs[r.idx()].status, PStatus::Idle);

        // Inside a collective: run its rounds first.
        if st.procs[r.idx()].coll.is_some() && enter_coll_rounds(cx, st, r) {
            return; // blocked inside the collective
        }
        // Collective finished; fall through to trace events.

        let cursor = st.procs[r.idx()].cursor;
        let Some(ev) = st.fetch_event(r, cursor) else {
            let p = &mut st.procs[r.idx()];
            p.status = PStatus::Done;
            p.finish = cx.now();
            st.done += 1;
            return;
        };
        st.procs[r.idx()].cursor += 1;

        match &ev.kind {
            EventKind::Compute => {
                let d = ev.dur.scale(st.compute_scale);
                let p = &mut st.procs[r.idx()];
                // Saturate: a pathological duration must surface as the
                // engine's typed clock overflow, not an accounting abort.
                p.compute_total = p.compute_total.saturating_add(d);
                p.status = PStatus::Computing;
                cx.sched_in(d, SimEvent::ComputeDone(r));
                return;
            }
            EventKind::Send { peer, bytes, tag } => {
                let id = st.send_message(cx, r, *peer, *bytes, *tag, RelPurpose::BlockingSend(r));
                let p = &mut st.procs[r.idx()];
                p.status = PStatus::BlockedSend;
                p.blocked_send_msg = id;
                return;
            }
            EventKind::Isend { peer, bytes, tag, req } => {
                st.procs[r.idx()].reqs.insert(req.0, false);
                st.send_message(cx, r, *peer, *bytes, *tag, RelPurpose::AppReq(r, req.0));
            }
            EventKind::Recv { peer, tag, .. } => {
                let tok = token(r, TOKEN_BLOCKING);
                if st.mailboxes[r.idx()].post(*peer, *tag, tok).is_none() {
                    st.procs[r.idx()].status = PStatus::BlockedRecv;
                    return;
                }
            }
            EventKind::Irecv { peer, tag, req, .. } => {
                let done = st.mailboxes[r.idx()].post(*peer, *tag, token(r, req.0)).is_some();
                st.procs[r.idx()].reqs.insert(req.0, done);
            }
            EventKind::Wait { req } => {
                if st.procs[r.idx()].reqs.get(req.0).is_none() {
                    // Malformed trace: the request was never issued.
                    // Latch the typed cause and let the rank block on a
                    // request that can never complete; sim_core reports
                    // the latched error instead of a bare deadlock.
                    st.procs[r.idx()].reqs.insert(req.0, false);
                    if st.error.is_none() {
                        st.error = Some(SimError::UnknownRequest { rank: r.0, req: req.0 });
                    }
                }
                let p = &mut st.procs[r.idx()];
                if p.reqs.remove(req.0).unwrap_or(false) {
                    // Already complete.
                } else {
                    p.reqs.insert(req.0, false);
                    p.wait_set.clear();
                    p.wait_set.push(req.0);
                    p.status = PStatus::Waiting;
                    return;
                }
            }
            EventKind::WaitAll { reqs } => {
                for id in reqs {
                    if st.procs[r.idx()].reqs.get(id.0).is_none() {
                        // Same malformed-trace handling as Wait above.
                        st.procs[r.idx()].reqs.insert(id.0, false);
                        if st.error.is_none() {
                            st.error = Some(SimError::UnknownRequest { rank: r.0, req: id.0 });
                        }
                    }
                }
                let p = &mut st.procs[r.idx()];
                p.wait_set.clear();
                for id in reqs {
                    if !p.reqs.get(id.0).unwrap_or(false) {
                        p.wait_set.push(id.0);
                    }
                }
                if p.wait_set.is_empty() {
                    for id in reqs {
                        p.reqs.remove(id.0);
                    }
                } else {
                    for id in reqs {
                        if p.reqs.get(id.0) == Some(true) {
                            p.reqs.remove(id.0);
                        }
                    }
                    p.status = PStatus::Waiting;
                    return;
                }
            }
            EventKind::Coll { kind, bytes, root } => {
                let ordinal = st.procs[r.idx()].coll_count;
                st.procs[r.idx()].coll_count += 1;
                let key = (*kind as u8, r.0, *bytes, root.0);
                let sched_idx = match st.coll_cache.get(&key) {
                    Some(&idx) => idx,
                    None => {
                        let sched = if st.profile_lower {
                            let t0 = Instant::now();
                            let sched = lower(*kind, r, st.trace.num_ranks(), *bytes, *root);
                            st.lower_ns += t0.elapsed().as_nanos() as u64;
                            sched
                        } else {
                            lower(*kind, r, st.trace.num_ranks(), *bytes, *root)
                        };
                        let idx = st.coll_scheds.len() as u32;
                        st.coll_scheds.push(sched);
                        st.coll_cache.insert(key, idx);
                        idx
                    }
                };
                st.procs[r.idx()].coll = Some(CollExec { sched_idx, round: 0, ordinal });
                // Loop continues into enter_coll_rounds.
            }
        }
    }
}

/// Execute collective rounds until blocked (true) or done (false).
fn enter_coll_rounds<'a, C: SimCx>(cx: &mut C, st: &mut SimState<'a>, r: Rank) -> bool {
    loop {
        let (round_idx, ordinal, sched_idx) = {
            let p = &st.procs[r.idx()];
            let c = p.coll.as_ref().expect("in collective");
            (c.round, c.ordinal, c.sched_idx as usize)
        };
        if round_idx >= st.coll_scheds[sched_idx].rounds.len() {
            st.procs[r.idx()].coll = None;
            return false;
        }
        // Copy this round out of the shared cached schedule (the sends
        // below need `st` mutably); the scratch buffers are reused
        // across rounds, so steady state copies without allocating.
        let mut recvs = std::mem::take(&mut st.scr_recvs);
        let mut sends = std::mem::take(&mut st.scr_sends);
        let round = &st.coll_scheds[sched_idx].rounds[round_idx];
        recvs.clear();
        recvs.extend_from_slice(&round.recvs);
        sends.clear();
        sends.extend_from_slice(&round.sends);
        let tag = coll_tag(ordinal, round_idx as u32);
        let mut pending = 0u32;
        // Post receives first (they may already be unexpected-matched).
        for &(peer, _bytes) in &recvs {
            if st.mailboxes[r.idx()].post(peer, tag, token(r, TOKEN_COLL)).is_none() {
                pending += 1;
            }
        }
        // Issue sends.
        for &(peer, bytes) in &sends {
            st.send_message(cx, r, peer, bytes, tag, RelPurpose::CollRound(r));
            pending += 1;
        }
        st.scr_recvs = recvs;
        st.scr_sends = sends;
        let p = &mut st.procs[r.idx()];
        p.coll.as_mut().unwrap().round = round_idx + 1;
        if pending > 0 {
            p.round_pending = pending;
            p.status = PStatus::CollRound;
            return true;
        }
        // Empty (or fully satisfied) round: continue to the next.
    }
}

/// A message reached its destination rank.
pub(crate) fn on_deliver<'a, C: SimCx>(
    cx: &mut C,
    st: &mut SimState<'a>,
    dst: Rank,
    src: Rank,
    tag: u32,
    _msg_id: u32,
) {
    let Some(tok) = st.mailboxes[dst.idx()].deliver(src, tag, cx.now()) else {
        return; // queued as unexpected
    };
    recv_complete(cx, st, tok);
}

/// A posted receive just matched.
fn recv_complete<'a, C: SimCx>(cx: &mut C, st: &mut SimState<'a>, tok: u64) {
    let r = Rank((tok >> 32) as u32);
    let code = (tok & 0xFFFF_FFFF) as u32;
    let p = &mut st.procs[r.idx()];
    if code == TOKEN_BLOCKING {
        debug_assert_eq!(p.status, PStatus::BlockedRecv);
        p.status = PStatus::Idle;
        advance(cx, st, r);
    } else if code == TOKEN_COLL {
        debug_assert!(p.round_pending > 0);
        p.round_pending -= 1;
        if p.round_pending == 0 && p.status == PStatus::CollRound {
            p.status = PStatus::Idle;
            advance(cx, st, r);
        }
    } else {
        // Application request completion.
        p.reqs.set_done(code);
        try_finish_wait(cx, st, r);
    }
}

/// A sender may reuse its buffer (message fully injected / drained).
pub(crate) fn on_release<'a, C: SimCx>(cx: &mut C, st: &mut SimState<'a>, _src: Rank, msg_id: u32) {
    let Some(purpose) = st.releases.get_mut(msg_id as usize).and_then(Option::take) else {
        return;
    };
    match purpose {
        RelPurpose::BlockingSend(r) => {
            let p = &mut st.procs[r.idx()];
            debug_assert_eq!(p.status, PStatus::BlockedSend);
            debug_assert_eq!(p.blocked_send_msg, msg_id);
            p.status = PStatus::Idle;
            advance(cx, st, r);
        }
        RelPurpose::AppReq(r, req) => {
            st.procs[r.idx()].reqs.set_done(req);
            try_finish_wait(cx, st, r);
        }
        RelPurpose::CollRound(r) => {
            let p = &mut st.procs[r.idx()];
            debug_assert!(p.round_pending > 0);
            p.round_pending -= 1;
            if p.round_pending == 0 && p.status == PStatus::CollRound {
                p.status = PStatus::Idle;
                advance(cx, st, r);
            }
        }
    }
}

/// If rank `r` is blocked in `Wait`/`WaitAll` and everything it waits on
/// completed, resume it.
fn try_finish_wait<'a, C: SimCx>(cx: &mut C, st: &mut SimState<'a>, r: Rank) {
    let p = &mut st.procs[r.idx()];
    if p.status != PStatus::Waiting {
        return;
    }
    if p.wait_set.iter().all(|&id| p.reqs.get(id).unwrap_or(false)) {
        // Drain in place so the wait-set buffer keeps its capacity.
        for i in 0..p.wait_set.len() {
            let id = p.wait_set[i];
            p.reqs.remove(id);
        }
        p.wait_set.clear();
        p.status = PStatus::Idle;
        advance(cx, st, r);
    }
}

/// Run a simulation and return the full per-link byte counters (for
/// utilization reports; `SimResult` itself carries only the maximum).
///
/// Panics on an invalid configuration (reporting paths run on
/// already-validated configurations).
pub fn link_bytes_of(trace: &Trace, cfg: &SimConfig) -> Vec<u64> {
    let mut eng: Engine<SimState<'_>> = Engine::new();
    let mut st = SimState::new(TraceSource::Memory(trace), cfg).unwrap_or_else(|e| panic!("{e}"));
    for r in 0..trace.num_ranks() {
        eng.schedule_at(Time::ZERO, SimEvent::Advance(Rank(r)));
    }
    eng.run(&mut st);
    st.net.link_bytes().to_vec()
}

/// Run the simulation to completion and collect results.
///
/// Panics if the replay deadlocks (validate traces first), the mapping
/// does not fit the machine, or the simulated clock overflows. Use
/// [`simulate_budgeted`] / [`simulate_limited`] for the `Result` path.
pub fn simulate(trace: &Trace, cfg: &SimConfig) -> SimResult {
    simulate_budgeted(trace, cfg, u64::MAX).unwrap_or_else(|e| panic!("simulation failed: {e}"))
}

/// Run the simulation with a work budget (DES events plus model work
/// units). Returns an error when the budget is exhausted — the analogue
/// of the paper's tool failures, where SST/Macro's packet and flow
/// models completed only 216 and 162 of the 235 traces — or when the
/// simulated clock overflows or the trace deadlocks; either way the
/// trace is reported incomplete instead of panicking the study's thread
/// pool.
pub fn simulate_budgeted(
    trace: &Trace,
    cfg: &SimConfig,
    max_work: u64,
) -> Result<SimResult, SimError> {
    sim_core(TraceSource::Memory(trace), cfg, SimLimits::budget(max_work), None)
}

/// Run the simulation under full [`SimLimits`]: the deterministic work
/// budget plus an optional wall-clock deadline, both checked every 1024
/// events.
pub fn simulate_limited(
    trace: &Trace,
    cfg: &SimConfig,
    limits: SimLimits,
) -> Result<SimResult, SimError> {
    sim_core(TraceSource::Memory(trace), cfg, limits, None)
}

/// [`simulate_limited`] over an on-disk streamed trace: events decode
/// through per-rank sliding windows, so the full per-rank `Vec<Event>`s
/// are never materialized — resident cost is the compact encoded buffer
/// plus O(1) decode state per rank. Predictions are bit-identical to
/// running [`simulate_limited`] on the decoded trace (the equivalence
/// suite asserts this per generator). Always sequential: the streamed
/// path does not partition.
pub fn simulate_streamed_limited(
    stream: &StreamedTrace,
    cfg: &SimConfig,
    limits: SimLimits,
) -> Result<SimResult, SimError> {
    sim_core(TraceSource::Streamed(stream), cfg, limits, None)
}

/// Observed variant of [`simulate_streamed_limited`].
pub fn simulate_streamed_observed(
    stream: &StreamedTrace,
    cfg: &SimConfig,
    limits: SimLimits,
    ms: &MetricSet,
) -> Result<SimResult, SimError> {
    sim_core(TraceSource::Streamed(stream), cfg, limits, Some(ms))
}

/// Budgeted simulation with `sim.*` telemetry on `ms`: the engine's
/// event counts, injected messages, network-model work (packets, hops,
/// ripple re-solves), per-link utilization aggregates, budget consumed,
/// and a wall-clock span. Results are bit-identical to
/// [`simulate_budgeted`] — the hot loop carries no instrumentation, the
/// sink is filled once after the run.
pub fn simulate_observed(
    trace: &Trace,
    cfg: &SimConfig,
    max_work: u64,
    ms: &MetricSet,
) -> Result<SimResult, SimError> {
    sim_core(TraceSource::Memory(trace), cfg, SimLimits::budget(max_work), Some(ms))
}

/// Observed variant of [`simulate_limited`].
pub fn simulate_limited_observed(
    trace: &Trace,
    cfg: &SimConfig,
    limits: SimLimits,
    ms: &MetricSet,
) -> Result<SimResult, SimError> {
    sim_core(TraceSource::Memory(trace), cfg, limits, Some(ms))
}

/// Force the partitioned (windowed-PDES) executor regardless of
/// `cfg.sim_threads` — with `sim_threads = 1` this runs the windowed
/// executor inline on the calling thread, which is how the bench gate
/// measures the PDES machinery's overhead honestly on a single-core
/// runner. Falls back to the sequential engine when the config cannot
/// partition (non-packet model, eager injection, or zero hop latency),
/// so results are always defined and bit-identical to [`simulate`].
pub fn simulate_partitioned_observed(
    trace: &Trace,
    cfg: &SimConfig,
    limits: SimLimits,
    ms: &MetricSet,
) -> Result<SimResult, SimError> {
    if crate::pdes_run::can_partition(cfg) {
        crate::pdes_run::sim_partitioned(trace, cfg, limits, Some(ms))
    } else {
        sim_core(TraceSource::Memory(trace), cfg, limits, Some(ms))
    }
}

fn sim_core(
    src: TraceSource<'_>,
    cfg: &SimConfig,
    limits: SimLimits,
    obs: Option<&MetricSet>,
) -> Result<SimResult, SimError> {
    if let TraceSource::Memory(trace) = src {
        if crate::pdes_run::wants_partitioned(cfg) {
            return crate::pdes_run::sim_partitioned(trace, cfg, limits, obs);
        }
    }
    let span = obs.map(|ms| ms.span("sim.runner.simulate"));
    let mut eng: Engine<SimState<'_>> = Engine::new();
    let mut st = match SimState::new(src, cfg) {
        Ok(st) => st,
        Err(e) => return Err(observe_fail(obs, span, e)),
    };
    st.profile_lower = obs.is_some();
    let n = src.num_ranks();
    for r in 0..n {
        eng.schedule_at(Time::ZERO, SimEvent::Advance(Rank(r)));
    }
    // Wall clock is only consulted when a deadline is armed, so the
    // budget-only path stays free of syscalls.
    let started = limits.deadline.map(|_| Instant::now());
    // A state that is already over the memory budget (e.g. the trace
    // itself) fails fast, before any events run.
    if let Err(err) = check_limits(0, st.resident_bytes(), &limits, started, obs) {
        return Err(observe_fail(obs, span, err));
    }
    let mut check = 0u32;
    if let (Some(ms), Some(tl)) = (obs, masim_obs::tracelog::current()) {
        // Detail drain: identical control flow to the plain loop below,
        // plus a simulated-time-per-event histogram and periodic queue
        // telemetry into the installed trace log. Selected up front so
        // the default path stays free of per-event instrumentation.
        let dt_hist = ms.hist("sim.engine.dt_ps");
        let _drain = tl.span("des.engine.drain");
        let mut last_ps = 0u64;
        while eng.step(&mut st) {
            let now_ps = eng.now().as_ps();
            dt_hist.record(now_ps.saturating_sub(last_ps));
            last_ps = now_ps;
            check += 1;
            if check == 1024 {
                check = 0;
                tl.counter("des.queue.depth", eng.pending() as u64);
                tl.counter("des.queue.migrations", eng.queue_overflow_migrations());
                let consumed = eng.processed().saturating_add(st.net.work_units());
                if let Err(err) = check_limits(consumed, st.resident_bytes(), &limits, started, obs)
                {
                    return Err(observe_fail(obs, span, err));
                }
            }
        }
    } else {
        while eng.step(&mut st) {
            check += 1;
            // Limit checks every 1024 events (work counters are monotone).
            if check == 1024 {
                check = 0;
                let consumed = eng.processed().saturating_add(st.net.work_units());
                if let Err(err) = check_limits(consumed, st.resident_bytes(), &limits, started, obs)
                {
                    return Err(observe_fail(obs, span, err));
                }
            }
        }
    }
    if let Some(err) = st.error.take() {
        // A malformed-trace cause latched mid-run outranks the generic
        // deadlock the stalled rank would otherwise be reported as.
        return Err(observe_fail(obs, span, err));
    }
    if let Some(overflow) = eng.error() {
        // The engine latched a clock overflow and stopped; the trace
        // prediction is incomplete.
        let err = SimError::ClockOverflow { model: cfg.model.name(), overflow };
        return Err(observe_fail(obs, span, err));
    }
    if st.done != n as usize {
        let waiting_ranks: Vec<u32> = st
            .procs
            .iter()
            .enumerate()
            .filter(|(_, p)| p.status != PStatus::Done)
            .map(|(r, _)| r as u32)
            .take(crate::error::DEADLOCK_RANK_SAMPLE)
            .collect();
        let err = SimError::Deadlock {
            model: cfg.model.name(),
            finished: st.done as u32,
            total: n,
            waiting_ranks,
        };
        return Err(observe_fail(obs, span, err));
    }
    let per_rank: Vec<Time> = st.procs.iter().map(|p| p.finish).collect();
    let total = per_rank.iter().copied().max().unwrap_or(Time::ZERO);
    let comm_time = st.procs.iter().map(|p| p.finish.saturating_sub(p.compute_total)).sum();
    if let Some(ms) = obs {
        if let Some(s) = span {
            s.stop();
        }
        ms.add("sim.runner.messages", st.messages);
        ms.add("sim.budget.consumed", eng.processed().saturating_add(st.net.work_units()));
        // Peak pending-event occupancy: the quantity lazy packet
        // injection bounds to O(in-flight messages).
        ms.gauge_max("sim.queue.peak_occupancy", eng.max_pending() as u64);
        // Resident interned-route footprint (flat storage + index).
        ms.gauge_max("sim.route.arena_bytes", st.routes.bytes());
        if st.lower_ns > 0 {
            ms.record_span("sim.runner.lower", st.lower_ns);
        }
        // Message-size distribution, filled once from the slab after the
        // run — O(messages) here, nothing on the injection path.
        if !st.msgs.is_empty() {
            let mh = ms.hist("sim.msg.bytes");
            for i in 0..st.msgs.len() {
                mh.record(st.msgs.get(i as u32).bytes);
            }
        }
        eng.export_metrics(ms);
        st.net.export_metrics(ms);
    }
    Ok(SimResult {
        model: cfg.model,
        total,
        per_rank,
        comm_time,
        events: eng.processed(),
        messages: st.messages,
        work_units: st.net.work_units(),
        max_link_bytes: st.net.link_bytes().iter().copied().max().unwrap_or(0),
    })
}

/// The 1024-event-cadence limit check shared by both drain loops:
/// deterministic work budget first, then the memory budget, then the
/// optional wall deadline.
fn check_limits(
    consumed: u64,
    resident: u64,
    limits: &SimLimits,
    started: Option<Instant>,
    obs: Option<&MetricSet>,
) -> Result<(), SimError> {
    if consumed > limits.max_work {
        if let Some(ms) = obs {
            ms.add("sim.budget.consumed", consumed);
        }
        return Err(SimError::BudgetExhausted { consumed, budget: limits.max_work });
    }
    if resident > limits.max_bytes {
        return Err(SimError::MemoryBudget { resident, budget: limits.max_bytes });
    }
    if let (Some(deadline), Some(started)) = (limits.deadline, started) {
        let elapsed = started.elapsed();
        if elapsed > deadline {
            return Err(SimError::DeadlineExceeded { elapsed, deadline });
        }
    }
    Ok(())
}

/// Close out telemetry on a failing run: stop the wall span and bump the
/// per-cause failure counter. Returns the error unchanged.
pub(crate) fn observe_fail(
    obs: Option<&MetricSet>,
    span: Option<masim_obs::SpanGuard>,
    err: SimError,
) -> SimError {
    if let Some(ms) = obs {
        if let Some(s) = span {
            s.stop();
        }
        let counter = match &err {
            SimError::BudgetExhausted { .. } => "sim.budget.exhausted",
            SimError::DeadlineExceeded { .. } => "sim.deadline.exceeded",
            SimError::ClockOverflow { .. } => "sim.clock.overflow",
            SimError::Deadlock { .. } => "sim.deadlock.detected",
            SimError::InvalidConfig { .. } => "sim.config.invalid",
            SimError::UnknownRequest { .. } => "sim.trace.unknown-request",
            SimError::RouteArenaExhausted { .. } => "sim.route.exhausted",
            SimError::OversizedMessage { .. } => "sim.msg.oversized",
            SimError::MemoryBudget { .. } => "sim.memory.exceeded",
        };
        ms.add(counter, 1);
    }
    err
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The engine slab stores one `SimEvent` inline per pending event:
    /// it must stay `Copy` (no `Drop` glue on the cancel/recycle paths)
    /// and within the arena's inline-payload budget. CI runs this test
    /// by name as the payload-size gate.
    #[test]
    fn sim_event_is_copy_and_small() {
        fn assert_copy<T: Copy>() {}
        assert_copy::<SimEvent>();
        let size = std::mem::size_of::<SimEvent>();
        assert!(
            size <= masim_des::MAX_INLINE_PAYLOAD_BYTES,
            "SimEvent grew to {size} bytes; keep event payloads within the arena budget"
        );
        assert!(!std::mem::needs_drop::<SimEvent>());
    }
}
