//! Counter/gauge/histogram registry.
//!
//! A [`MetricSet`] is a cheaply clonable handle (`Arc` inside) to a named
//! registry of atomics. Hot paths pre-register a [`Counter`], [`Gauge`],
//! or [`Histogram`] once and then touch only the atomics; cold paths can
//! use [`MetricSet::add`] / [`MetricSet::gauge_max`] by name.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::{HistCells, HistData, Histogram};
use crate::span::{SpanGuard, SpanStats};

/// Monotonic counter handle. Clone freely; all clones share the cell.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-value / high-water-mark gauge handle.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if `v` is larger (high-water mark).
    #[inline]
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    spans: Mutex<BTreeMap<String, SpanStats>>,
    hists: Mutex<BTreeMap<String, Arc<HistCells>>>,
}

/// Shared registry of counters, gauges, and span statistics.
#[derive(Clone, Default)]
pub struct MetricSet {
    inner: Arc<Inner>,
}

/// Point-in-time copy of a [`MetricSet`], ordered by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, u64>,
    pub spans: BTreeMap<String, SpanStats>,
    pub hists: BTreeMap<String, HistData>,
}

impl MetricSet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Fetch (registering on first use) the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.counters.lock().expect("obs counters poisoned");
        let cell = map.entry(name.to_string()).or_default().clone();
        Counter(cell)
    }

    /// Fetch (registering on first use) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.gauges.lock().expect("obs gauges poisoned");
        let cell = map.entry(name.to_string()).or_default().clone();
        Gauge(cell)
    }

    /// Fetch (registering on first use) the log2-bucketed histogram
    /// `name`. With instrumentation compiled out, returns a detached
    /// handle — records land nowhere.
    pub fn hist(&self, name: &str) -> Histogram {
        #[cfg(feature = "enabled")]
        {
            let mut map = self.inner.hists.lock().expect("obs hists poisoned");
            let cell = map.entry(name.to_string()).or_default().clone();
            Histogram(cell)
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = name;
            Histogram::detached()
        }
    }

    /// Record one observation into histogram `name`; registry lookup per
    /// call, so prefer a pre-registered [`Histogram`] in tight loops.
    #[inline]
    pub fn hist_record(&self, name: &str, v: u64) {
        #[cfg(feature = "enabled")]
        {
            self.hist(name).record(v);
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (name, v);
        }
    }

    /// Add `n` to counter `name`; registry lookup per call, so prefer a
    /// pre-registered [`Counter`] in tight loops.
    #[inline]
    pub fn add(&self, name: &str, n: u64) {
        #[cfg(feature = "enabled")]
        {
            self.counter(name).add(n);
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (name, n);
        }
    }

    /// Raise gauge `name` to `v` if larger.
    #[inline]
    pub fn gauge_max(&self, name: &str, v: u64) {
        #[cfg(feature = "enabled")]
        {
            self.gauge(name).record_max(v);
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (name, v);
        }
    }

    /// Set gauge `name` to `v`.
    #[inline]
    pub fn gauge_set(&self, name: &str, v: u64) {
        #[cfg(feature = "enabled")]
        {
            self.gauge(name).set(v);
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (name, v);
        }
    }

    /// Open a wall-clock span; it records into this set when dropped or
    /// stopped. With instrumentation compiled out the guard still measures
    /// (so [`SpanGuard::stop`] returns real elapsed time) but records
    /// nothing.
    pub fn span(&self, name: &str) -> SpanGuard {
        #[cfg(feature = "enabled")]
        {
            SpanGuard::started(self.clone(), name)
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = name;
            SpanGuard::detached()
        }
    }

    /// Merge one finished span observation into the registry.
    /// Exposed for [`SpanGuard`] and for folding external measurements in.
    pub fn record_span(&self, name: &str, elapsed_ns: u64) {
        #[cfg(feature = "enabled")]
        {
            let mut map = self.inner.spans.lock().expect("obs spans poisoned");
            map.entry(name.to_string()).or_default().record(elapsed_ns);
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (name, elapsed_ns);
        }
    }

    /// Copy out every metric, ordered by name.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .inner
            .counters
            .lock()
            .expect("obs counters poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .inner
            .gauges
            .lock()
            .expect("obs gauges poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let spans = self.inner.spans.lock().expect("obs spans poisoned").clone();
        let hists = self
            .inner
            .hists
            .lock()
            .expect("obs hists poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), Histogram(v.clone()).data()))
            .collect();
        Snapshot { counters, gauges, spans, hists }
    }

    /// Fold every metric of `other` into `self` (counters summed, gauges
    /// maxed, span stats merged, histogram buckets summed). Used to
    /// aggregate per-worker sets.
    pub fn absorb(&self, other: &Snapshot) {
        for (k, v) in &other.counters {
            self.add(k, *v);
        }
        for (k, v) in &other.gauges {
            self.gauge_max(k, *v);
        }
        #[cfg(feature = "enabled")]
        {
            let mut map = self.inner.spans.lock().expect("obs spans poisoned");
            for (k, s) in &other.spans {
                map.entry(k.clone()).or_default().merge(s);
            }
        }
        for (k, h) in &other.hists {
            let handle = self.hist(k);
            #[cfg(feature = "enabled")]
            {
                // Bucket-sum through the atomic cells so concurrent
                // absorbs compose.
                for (b, n) in h.buckets.iter().enumerate() {
                    if *n > 0 {
                        handle.add_bucket(b, *n);
                    }
                }
                handle.fold_exact(h.sum, h.min, h.max);
            }
            #[cfg(not(feature = "enabled"))]
            {
                let _ = (k, h, handle);
            }
        }
    }
}

impl std::fmt::Debug for MetricSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricSet").field("snapshot", &self.snapshot()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_shared_across_handles() {
        let ms = MetricSet::new();
        let a = ms.counter("x.y.z");
        let b = ms.counter("x.y.z");
        a.inc();
        b.add(4);
        assert_eq!(ms.snapshot().counters["x.y.z"], 5);
    }

    #[cfg(feature = "enabled")] // asserts recorded state
    #[test]
    fn gauge_high_water() {
        let ms = MetricSet::new();
        ms.gauge_max("q.depth", 3);
        ms.gauge_max("q.depth", 9);
        ms.gauge_max("q.depth", 5);
        assert_eq!(ms.snapshot().gauges["q.depth"], 9);
    }

    /// Satellite: absorb's merge semantics pinned — counters add, gauges
    /// max, spans merge, histogram buckets sum.
    #[cfg(feature = "enabled")] // asserts recorded state
    #[test]
    fn absorb_sums_counters() {
        let a = MetricSet::new();
        let b = MetricSet::new();
        a.add("n", 2);
        a.gauge_max("g", 9);
        a.hist_record("h", 3);
        b.add("n", 3);
        b.gauge_max("g", 7);
        b.record_span("s", 100);
        b.hist_record("h", 3);
        b.hist_record("h", 1000);
        a.absorb(&b.snapshot());
        let snap = a.snapshot();
        assert_eq!(snap.counters["n"], 5, "counters add");
        assert_eq!(snap.gauges["g"], 9, "gauges keep the max");
        assert_eq!(snap.spans["s"].count, 1);
        let h = &snap.hists["h"];
        assert_eq!(h.count(), 3, "histogram buckets sum");
        assert_eq!(h.buckets[crate::hist::bucket_of(3)], 2);
        assert_eq!(h.sum, 1006);
        assert_eq!(h.min, 3);
        assert_eq!(h.max, 1000);
    }

    #[cfg(feature = "enabled")] // asserts recorded state
    #[test]
    fn hist_shared_across_handles() {
        let ms = MetricSet::new();
        let a = ms.hist("d");
        let b = ms.hist("d");
        a.record(4);
        b.record(9);
        assert_eq!(ms.snapshot().hists["d"].count(), 2);
    }
}
