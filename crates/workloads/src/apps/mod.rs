//! Application generators, grouped by communication-pattern family.
//!
//! Each generator emits the application's documented communication
//! skeleton. The goal is not numerical fidelity to any particular input
//! deck but *pattern* fidelity: the regularity, message-size mix,
//! collective usage, and load balance that drive the paper's
//! modeling-vs-simulation accuracy gap.

use crate::config::{App, GenConfig};
use masim_trace::Trace;

pub mod compute_bound;
pub mod irregular;
pub mod krylov;
pub mod multigrid;
pub mod sort;
pub mod stencil;
pub mod transpose;
pub mod wavefront;

/// Contention factor the original run experienced, used only for
/// stamping measured durations (see `cost::StampModel`). Regular
/// nearest-neighbor apps ran nearly contention-free; global-transpose
/// and irregular many-to-many patterns congested links.
pub fn stamp_contention(app: App) -> f64 {
    match app {
        App::Ep | App::Cmc => 1.0,
        App::Lulesh | App::Cns | App::MiniFe | App::Nekbone => 1.05,
        App::Bt | App::Cg | App::Lu | App::Mg | App::MultiGrid | App::Amg => 1.1,
        App::Dt => 1.1,
        App::Ft => 1.25,
        App::BigFft => 1.3,
        App::Is => 1.35,
        App::FillBoundary => 1.4,
        App::Cr => 1.45,
    }
}

/// Generate the trace for `cfg.app`.
pub fn generate(cfg: &GenConfig) -> Trace {
    match cfg.app {
        App::Ep => compute_bound::ep(cfg),
        App::Cmc => compute_bound::cmc(cfg),
        App::Lulesh => stencil::lulesh(cfg),
        App::Cns => stencil::cns(cfg),
        App::MiniFe => stencil::minife(cfg),
        App::Bt => stencil::bt(cfg),
        App::Ft => transpose::ft(cfg),
        App::BigFft => transpose::bigfft(cfg),
        App::Is => sort::is(cfg),
        App::Mg => multigrid::mg(cfg),
        App::MultiGrid => multigrid::multigrid_full(cfg),
        App::Amg => multigrid::amg(cfg),
        App::Lu => wavefront::lu(cfg),
        App::Cg => krylov::cg(cfg),
        App::Nekbone => krylov::nekbone(cfg),
        App::Cr => irregular::cr(cfg),
        App::FillBoundary => irregular::fill_boundary(cfg),
        App::Dt => irregular::dt(cfg),
    }
}

/// Message-size multiplier for the problem-scale knob (≈ NAS class):
/// 1, 4, 16, 64 for sizes 1..=4.
pub(crate) fn size_mult(size: u32) -> u64 {
    1 << (2 * (size - 1))
}

/// Cap a per-rank volume so the whole-app traffic stays tractable for
/// packet-level simulation regardless of world size. Real applications
/// move far more data; scaling the *volume* while keeping the *pattern*
/// preserves every ratio the study reports (documented in DESIGN.md).
pub(crate) fn per_rank_volume(base: u64, ranks: u32) -> u64 {
    // Sized so the full 235-trace study stays tractable for packet-level
    // simulation on a single core; all volume *ratios* are preserved.
    const TOTAL_CAP: u64 = 16 << 20; // 16 MiB per operation across ranks
    base.min(TOTAL_CAP / ranks as u64).max(1024)
}

/// Integer cube root helper for 3-D decompositions.
pub(crate) fn cube_side(ranks: u32) -> u32 {
    let mut c = 1;
    while (c + 1) * (c + 1) * (c + 1) <= ranks {
        c += 1;
    }
    c
}

/// Integer square root helper for 2-D process grids.
pub(crate) fn grid_side(ranks: u32) -> u32 {
    let mut s = 1;
    while (s + 1) * (s + 1) <= ranks {
        s += 1;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GenConfig;

    /// Every generator yields a structurally valid trace that hits its
    /// target communication fraction.
    #[test]
    fn all_apps_generate_valid_traces() {
        for app in App::ALL {
            let cfg = GenConfig::test_default(app, 16);
            let t = generate(&cfg);
            assert_eq!(t.validate(), Ok(()), "{app}");
            assert_eq!(t.num_ranks(), cfg.ranks, "{app}");
            let got = t.comm_fraction();
            assert!(
                (got - cfg.comm_fraction).abs() < 1e-6,
                "{app}: target {} got {got}",
                cfg.comm_fraction
            );
            assert!(t.num_events() > 0, "{app}");
            assert_eq!(t.meta.app, app.name());
        }
    }

    /// Generators are deterministic in the seed.
    #[test]
    fn generators_deterministic() {
        for app in App::ALL {
            let cfg = GenConfig::test_default(app, 16);
            assert_eq!(generate(&cfg), generate(&cfg), "{app}");
        }
    }

    /// Different seeds give different traces (for apps with randomness;
    /// fully regular apps may coincide, so only check the irregular ones).
    #[test]
    fn seeds_differentiate_irregular_apps() {
        for app in [App::Cr, App::FillBoundary, App::Is, App::Amg, App::Cmc] {
            let a = generate(&GenConfig::test_default(app, 16));
            let mut cfg = GenConfig::test_default(app, 16);
            cfg.seed = 4242;
            let b = generate(&cfg);
            assert_ne!(a, b, "{app}");
        }
    }

    /// Larger problem sizes move more data.
    #[test]
    fn size_knob_scales_volume() {
        // (Apps whose per-op volume cap already binds at 16 ranks, like
        // IS, are excluded: their volume saturates by design.)
        for app in [App::Ft, App::Lulesh, App::Cg, App::Lu] {
            let mut small = GenConfig::test_default(app, 16);
            small.size = 1;
            let mut big = small.clone();
            big.size = 3;
            let vs = generate(&small).total_bytes();
            let vb = generate(&big).total_bytes();
            assert!(vb > vs, "{app}: {vb} !> {vs}");
        }
    }

    /// Scale helpers.
    #[test]
    fn helpers() {
        assert_eq!(size_mult(1), 1);
        assert_eq!(size_mult(4), 64);
        assert_eq!(cube_side(27), 3);
        assert_eq!(cube_side(63), 3);
        assert_eq!(cube_side(64), 4);
        assert_eq!(grid_side(16), 4);
        assert_eq!(grid_side(24), 4);
        assert_eq!(per_rank_volume(1 << 30, 1024), (16 << 20) / 1024);
        assert_eq!(per_rank_volume(4096, 1024), 4096);
        assert_eq!(per_rank_volume(1, 4), 1024, "floor applies");
    }

    /// Contention factors are sane and ordered: irregular/global > regular.
    #[test]
    fn contention_ordering() {
        assert!(stamp_contention(App::Cr) > stamp_contention(App::Lulesh));
        assert!(stamp_contention(App::Is) > stamp_contention(App::Cg));
        for app in App::ALL {
            let c = stamp_contention(app);
            assert!((1.0..=1.5).contains(&c), "{app}: {c}");
        }
    }
}
