//! Failure injection: malformed traces, degenerate configurations, and
//! boundary conditions must fail loudly and precisely — never silently
//! mis-simulate.

use masim_mfact::{replay, ModelConfig};
use masim_sim::{simulate, simulate_budgeted, ModelKind, SimConfig};
use masim_topo::{Machine, Mapping, NetworkConfig};
use masim_trace::{io, Event, EventKind, Rank, Time, Trace, TraceError, TraceMeta};

fn meta(ranks: u32) -> TraceMeta {
    TraceMeta {
        app: "fi".into(),
        machine: "t".into(),
        ranks,
        ranks_per_node: 1,
        problem_size: 1,
        seed: 0,
    }
}

/// A truncated binary trace is rejected at every cut point.
#[test]
fn truncated_binary_rejected() {
    let mut t = Trace::empty(meta(2));
    t.events[0] = vec![Event::compute(Time::from_us(1))];
    t.events[1] = vec![Event::new(
        EventKind::Coll { kind: masim_trace::CollKind::Barrier, bytes: 0, root: Rank(0) },
        Time::ZERO,
    )];
    let bytes = io::encode(&t);
    for cut in [1, 4, 8, bytes.len() / 2, bytes.len() - 1] {
        assert!(io::decode(&bytes[..cut]).is_err(), "cut at {cut}");
    }
}

/// Unmatched receives are caught by validation before any tool runs.
#[test]
fn unmatched_receive_caught() {
    let mut t = Trace::empty(meta(2));
    t.events[0] = vec![Event::compute(Time::from_us(1))];
    t.events[1] =
        vec![Event::new(EventKind::Recv { peer: Rank(0), bytes: 64, tag: 0 }, Time::ZERO)];
    assert!(matches!(t.validate(), Err(TraceError::UnmatchedMessage { .. })));
}

/// Zero-byte messages flow through both tools (MPI allows empty
/// payloads; the wire still carries a header).
#[test]
fn zero_byte_messages_work() {
    let mut t = Trace::empty(meta(2));
    t.events[0] = vec![Event::new(EventKind::Send { peer: Rank(1), bytes: 0, tag: 0 }, Time::ZERO)];
    t.events[1] = vec![Event::new(EventKind::Recv { peer: Rank(0), bytes: 0, tag: 0 }, Time::ZERO)];
    assert_eq!(t.validate(), Ok(()));
    let machine = Machine::cielito();
    let m = replay(&t, &[ModelConfig::base(machine.net)]);
    assert!(m[0].total > Time::ZERO, "latency still applies");
    for model in ModelKind::study_models() {
        let r = simulate(&t, &SimConfig::new(machine.clone(), model, &t));
        assert!(r.total > Time::ZERO, "{}", model.name());
    }
}

/// A single-rank trace (no communication possible) is fine everywhere.
#[test]
fn single_rank_trace_works() {
    let mut t = Trace::empty(meta(1));
    t.events[0] = vec![
        Event::compute(Time::from_ms(1)),
        Event::new(
            EventKind::Coll { kind: masim_trace::CollKind::Barrier, bytes: 0, root: Rank(0) },
            Time::ZERO,
        ),
    ];
    assert_eq!(t.validate(), Ok(()));
    let machine = Machine::cielito();
    let m = replay(&t, &[ModelConfig::base(machine.net)]);
    assert_eq!(m[0].per_rank.len(), 1);
    for model in ModelKind::study_models() {
        let r = simulate(&t, &SimConfig::new(machine.clone(), model, &t));
        assert!(r.total >= Time::from_ms(1), "{}", model.name());
    }
}

/// Zero bandwidth is rejected at configuration time, not discovered as
/// an infinite simulation.
#[test]
#[should_panic(expected = "positive")]
fn zero_bandwidth_rejected() {
    let _ = NetworkConfig::new(0.0, 1_000);
}

/// A mapping that oversubscribes node cores is rejected before the
/// simulation starts.
#[test]
#[should_panic(expected = "mapping does not fit")]
fn oversubscribed_mapping_rejected() {
    let machine = Machine::cielito(); // 16 cores/node
    let mut t = Trace::empty(meta(34));
    for r in 0..34 {
        t.events[r] = vec![Event::compute(Time::from_us(1))];
    }
    let cfg = SimConfig {
        machine: machine.clone(),
        mapping: Mapping::block(34, 17), // 17 ranks on one 16-core node
        model: ModelKind::Flow,
        compute_scale: 1.0,
    };
    let _ = simulate(&t, &cfg);
}

/// Budget exhaustion returns a contextual error rather than a bogus
/// partial result.
#[test]
fn budget_exhaustion_is_explicit() {
    use masim_sim::SimError;
    use masim_workloads::{generate, App, GenConfig};
    let mut gcfg = GenConfig::test_default(App::Ft, 64);
    gcfg.size = 3;
    gcfg.comm_fraction = 0.6;
    let t = generate(&gcfg);
    let machine = Machine::cielito();
    let cfg = SimConfig::new(machine, ModelKind::Packet { packet_bytes: 1024 }, &t);
    let err = simulate_budgeted(&t, &cfg, 2_000).expect_err("tiny budget must fail");
    assert!(
        matches!(err, SimError::BudgetExhausted { consumed, budget: 2_000 } if consumed > 2_000),
        "unexpected error: {err}"
    );
    let full = simulate_budgeted(&t, &cfg, u64::MAX).expect("unbounded run completes");
    assert!(full.events > 2_000);
}

/// MFACT rejects replays of deadlocking traces instead of hanging.
#[test]
#[should_panic(expected = "deadlock")]
fn mfact_detects_deadlock() {
    let mut t = Trace::empty(meta(2));
    t.events[0] = vec![Event::new(EventKind::Recv { peer: Rank(1), bytes: 8, tag: 0 }, Time::ZERO)];
    t.events[1] = vec![Event::new(EventKind::Recv { peer: Rank(0), bytes: 8, tag: 0 }, Time::ZERO)];
    let _ = replay(&t, &[ModelConfig::base(Machine::cielito().net)]);
}

/// The simulator detects the same deadlock.
#[test]
#[should_panic(expected = "deadlock")]
fn simulator_detects_deadlock() {
    let mut t = Trace::empty(meta(2));
    t.events[0] = vec![Event::new(EventKind::Recv { peer: Rank(1), bytes: 8, tag: 0 }, Time::ZERO)];
    t.events[1] = vec![Event::new(EventKind::Recv { peer: Rank(0), bytes: 8, tag: 0 }, Time::ZERO)];
    let machine = Machine::cielito();
    let cfg = SimConfig::new(machine, ModelKind::Flow, &t);
    let _ = simulate(&t, &cfg);
}

/// Text parsing survives hostile input without panicking.
#[test]
fn hostile_text_input() {
    for garbage in [
        "",
        "\n\n\n",
        "# masim trace:",
        "# masim trace: app= machine= ranks=abc rpn=1 size=1 seed=0",
        "# masim trace: app=x machine=y ranks=1 rpn=1 size=1 seed=0\nr0 -5us compute",
        "# masim trace: app=x machine=y ranks=1 rpn=1 size=1 seed=0\nr0 1us send -> r9 8B tag=0",
    ] {
        let _ = masim_trace::from_text(garbage); // must return Err, not panic
    }
}
