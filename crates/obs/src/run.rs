//! Run-level metrics sink.
//!
//! A [`RunMetrics`] bundles a [`MetricSet`] with identifying labels
//! (trace name, tool, seed, …) and serializes the whole thing to a JSON
//! or CSV sidecar under `reports/metrics/`. The JSON schema is flat and
//! stable:
//!
//! ```json
//! {"labels":{"tool":"mfact"},
//!  "counters":{"des.engine.processed":12345},
//!  "gauges":{"des.engine.pending_hwm":17},
//!  "spans":{"core.study.run_one/mfact":
//!           {"count":1,"sum_ns":52000,"min_ns":52000,"max_ns":52000}}}
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::json::{self, ParseError, Value};
use crate::metrics::{MetricSet, Snapshot};
use crate::span::SpanStats;

#[derive(Clone, Default, Debug)]
pub struct RunMetrics {
    labels: BTreeMap<String, String>,
    set: MetricSet,
}

impl RunMetrics {
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap an existing registry (shared with the instrumented code).
    pub fn with_set(set: MetricSet) -> Self {
        RunMetrics { labels: BTreeMap::new(), set }
    }

    pub fn label(mut self, key: &str, value: &str) -> Self {
        self.labels.insert(key.to_string(), value.to_string());
        self
    }

    pub fn set_label(&mut self, key: &str, value: &str) {
        self.labels.insert(key.to_string(), value.to_string());
    }

    pub fn labels(&self) -> &BTreeMap<String, String> {
        &self.labels
    }

    pub fn set(&self) -> &MetricSet {
        &self.set
    }

    pub fn to_json(&self) -> String {
        snapshot_to_json(&self.labels, &self.set.snapshot())
    }

    /// CSV with one row per metric:
    /// `kind,name,value,count,sum_ns,min_ns,max_ns`.
    pub fn to_csv(&self) -> String {
        let snap = self.set.snapshot();
        let mut out = String::from("kind,name,value,count,sum_ns,min_ns,max_ns\n");
        for (k, v) in &self.labels {
            let _ = writeln!(out, "label,{},{},,,,", csv_field(k), csv_field(v));
        }
        for (k, v) in &snap.counters {
            let _ = writeln!(out, "counter,{},{},,,,", csv_field(k), v);
        }
        for (k, v) in &snap.gauges {
            let _ = writeln!(out, "gauge,{},{},,,,", csv_field(k), v);
        }
        for (k, s) in &snap.spans {
            let _ = writeln!(
                out,
                "span,{},,{},{},{},{}",
                csv_field(k),
                s.count,
                s.sum_ns,
                s.min_ns,
                s.max_ns
            );
        }
        out
    }

    pub fn write_json(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_csv())
    }
}

fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Serialize labels + snapshot with sorted keys (BTreeMap order).
pub fn snapshot_to_json(labels: &BTreeMap<String, String>, snap: &Snapshot) -> String {
    let labels =
        Value::Obj(labels.iter().map(|(k, v)| (k.clone(), Value::Str(v.clone()))).collect());
    let counters =
        Value::Obj(snap.counters.iter().map(|(k, v)| (k.clone(), Value::UInt(*v))).collect());
    let gauges =
        Value::Obj(snap.gauges.iter().map(|(k, v)| (k.clone(), Value::UInt(*v))).collect());
    let spans = Value::Obj(
        snap.spans
            .iter()
            .map(|(k, s)| {
                (
                    k.clone(),
                    Value::Obj(vec![
                        ("count".into(), Value::UInt(s.count)),
                        ("sum_ns".into(), Value::UInt(s.sum_ns)),
                        ("min_ns".into(), Value::UInt(s.min_ns)),
                        ("max_ns".into(), Value::UInt(s.max_ns)),
                    ]),
                )
            })
            .collect(),
    );
    Value::Obj(vec![
        ("labels".into(), labels),
        ("counters".into(), counters),
        ("gauges".into(), gauges),
        ("spans".into(), spans),
    ])
    .to_json()
}

/// Labels + snapshot parsed back out of a sidecar.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunMetricsData {
    pub labels: BTreeMap<String, String>,
    pub snapshot: Snapshot,
}

/// Parse a sidecar produced by [`RunMetrics::to_json`] /
/// [`snapshot_to_json`].
pub fn parse_json(text: &str) -> Result<RunMetricsData, ParseError> {
    let doc = json::parse(text)?;
    let bad = |message: &str| ParseError { offset: 0, message: message.to_string() };

    let mut data = RunMetricsData::default();
    if let Some(fields) = doc.get("labels").and_then(Value::as_obj) {
        for (k, v) in fields {
            let v = v.as_str().ok_or_else(|| bad("label value not a string"))?;
            data.labels.insert(k.clone(), v.to_string());
        }
    }
    for (section, out) in
        [("counters", &mut data.snapshot.counters), ("gauges", &mut data.snapshot.gauges)]
    {
        if let Some(fields) = doc.get(section).and_then(Value::as_obj) {
            for (k, v) in fields {
                let v = v.as_u64().ok_or_else(|| bad(&format!("{section} value not a u64")))?;
                out.insert(k.clone(), v);
            }
        }
    }
    if let Some(fields) = doc.get("spans").and_then(Value::as_obj) {
        for (k, v) in fields {
            let field = |name: &str| {
                v.get(name)
                    .and_then(Value::as_u64)
                    .ok_or_else(|| bad(&format!("span missing {name}")))
            };
            data.snapshot.spans.insert(
                k.clone(),
                SpanStats {
                    count: field("count")?,
                    sum_ns: field("sum_ns")?,
                    min_ns: field("min_ns")?,
                    max_ns: field("max_ns")?,
                },
            );
        }
    }
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip() {
        let rm = RunMetrics::new().label("tool", "mfact").label("trace", "cg_64");
        rm.set().add("a.b.c", 41);
        rm.set().gauge_max("a.b.hwm", 9);
        rm.set().record_span("a.phase", 1234);
        rm.set().record_span("a.phase", 2000);

        let text = rm.to_json();
        let data = parse_json(&text).unwrap();
        assert_eq!(data.labels["tool"], "mfact");
        assert_eq!(data.labels["trace"], "cg_64");
        assert_eq!(data.snapshot, rm.set().snapshot());
    }

    #[cfg(feature = "enabled")] // asserts recorded state
    #[test]
    fn csv_has_all_rows() {
        let rm = RunMetrics::new().label("tool", "flow");
        rm.set().add("n", 3);
        rm.set().record_span("p", 10);
        let csv = rm.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "kind,name,value,count,sum_ns,min_ns,max_ns");
        assert!(lines.iter().any(|l| l.starts_with("label,tool,flow")));
        assert!(lines.iter().any(|l| l.starts_with("counter,n,3")));
        assert!(lines.iter().any(|l| l.starts_with("span,p,,1,10,10,10")));
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(parse_json("{\"counters\":{\"x\":\"nope\"}}").is_err());
        assert!(parse_json("not json").is_err());
    }
}
