//! Engine-level error types.
//!
//! The only runtime error a correct model can provoke is clock overflow:
//! simulated time is a `u64` picosecond counter (about 213 days), and a
//! trace with a pathological compute duration or an unbounded retry loop
//! can push `now + delay` past it. That used to be an
//! `expect("simulation time overflow")` — which, under the parallel
//! study runner, took down the whole thread pool. It is now a value the
//! embedding simulator surfaces through its own result path.

use masim_trace::Time;
use std::fmt;
use std::time::Duration;

/// The simulation clock overflowed while computing `now + delay`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClockOverflow {
    /// The engine clock when the offending schedule was attempted.
    pub now: Time,
    /// The delay whose addition overflowed.
    pub delay: Time,
}

impl fmt::Display for ClockOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "simulation clock overflow: now {} + delay {} exceeds u64 picoseconds",
            self.now, self.delay
        )
    }
}

impl std::error::Error for ClockOverflow {}

/// Why a windowed PDES run stopped early.
///
/// The windowed executor runs whole simulations (not single steps), so
/// unlike the sequential engine — whose embedder polls `Engine::error`
/// between steps and applies its own budget/deadline checks — the
/// executor enforces limits itself and surfaces every abnormal stop as
/// a typed value. Chaos-injected faults land here instead of panicking
/// the worker pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PdesError {
    /// The simulation clock overflowed (window horizon or follow-up).
    Clock(ClockOverflow),
    /// The work budget was exhausted.
    Budget {
        /// Work consumed when the check tripped (events + model work
        /// units; checked at window granularity, so it may overshoot
        /// the budget by up to one window's worth).
        consumed: u64,
        /// The configured budget.
        budget: u64,
    },
    /// The wall-clock deadline passed.
    Deadline {
        /// Elapsed wall-clock when the check tripped.
        elapsed: Duration,
        /// The configured deadline.
        deadline: Duration,
    },
}

impl From<ClockOverflow> for PdesError {
    fn from(e: ClockOverflow) -> PdesError {
        PdesError::Clock(e)
    }
}

impl fmt::Display for PdesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdesError::Clock(e) => e.fmt(f),
            PdesError::Budget { consumed, budget } => {
                write!(f, "PDES work budget exhausted: {consumed} of {budget}")
            }
            PdesError::Deadline { elapsed, deadline } => {
                write!(f, "PDES deadline exceeded: {elapsed:?} of {deadline:?}")
            }
        }
    }
}

impl std::error::Error for PdesError {}
