//! Figure 1 / Table II core measurement: wall-clock cost of modeling vs.
//! each simulation granularity on representative traces.
//!
//! Criterion reports the absolute times; the `repro` harness derives the
//! paper's ratio buckets from the same machinery over the full corpus.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use masim_bench::bench_entries;
use masim_mfact::{replay, ModelConfig};
use masim_sim::{simulate, ModelKind, SimConfig};
use masim_topo::Machine;
use std::hint::black_box;

fn tool_time(c: &mut Criterion) {
    let machine = Machine::cielito();
    let mut group = c.benchmark_group("tool_time");
    group.sample_size(10);

    for entry in bench_entries() {
        let trace = entry.generate();
        let label = format!("{}({})", entry.cfg.app, entry.cfg.ranks);

        group.bench_with_input(BenchmarkId::new("mfact", &label), &trace, |b, t| {
            b.iter(|| black_box(replay(t, &[ModelConfig::base(machine.net)])))
        });
        for model in ModelKind::study_models() {
            let cfg = SimConfig::new(machine.clone(), model, &trace);
            group.bench_with_input(
                BenchmarkId::new(model.name(), &label),
                &trace,
                |b, t| b.iter(|| black_box(simulate(t, &cfg))),
            );
        }
    }
    group.finish();
}

/// MFACT's multi-configuration scaling: 1 vs 7 vs 15 configurations in a
/// single replay (the tool's signature capability — cost should grow far
/// slower than linearly).
fn mfact_multi_config(c: &mut Criterion) {
    let machine = Machine::cielito();
    let entry = &bench_entries()[1]; // CG
    let trace = entry.generate();
    let mut group = c.benchmark_group("mfact_multi_config");
    for n in [1usize, 7, 15] {
        let configs: Vec<ModelConfig> = (0..n)
            .map(|i| ModelConfig::base(machine.net.scaled(1.0 + i as f64 * 0.5, 1.0)))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &configs, |b, cfgs| {
            b.iter(|| black_box(replay(&trace, cfgs)))
        });
    }
    group.finish();
}

criterion_group!(benches, tool_time, mfact_multi_config);
criterion_main!(benches);
