//! Trace serialization: a compact binary format plus a line-oriented text
//! format for inspection.
//!
//! The binary layout is little-endian and length-prefixed throughout:
//!
//! ```text
//! magic   b"MASM"            4 bytes
//! version u32                format revision (currently 1)
//! meta    app, machine       (u32 len + utf8) × 2
//!         ranks, rpn, size   u32 × 3
//!         seed               u64
//! streams per rank: u64 event count, then events
//! event   tag u8, dur u64, payload per kind
//! ```
//!
//! The format deliberately has no backward-compat shims: the version is
//! checked and a mismatch is an error, which is the honest behaviour for
//! an internal research format.

use crate::event::{CollKind, Event, EventKind};
use crate::ids::{Rank, ReqId};
use crate::time::Time;
use crate::trace::{Trace, TraceMeta};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Current binary format revision.
pub const FORMAT_VERSION: u32 = 1;
const MAGIC: &[u8; 4] = b"MASM";

/// Decoding failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// Buffer does not start with the `MASM` magic.
    BadMagic,
    /// Format revision not understood.
    BadVersion(u32),
    /// Buffer ended mid-record; `context` names the record being read.
    Truncated {
        /// What was being decoded when the buffer ran out.
        context: &'static str,
    },
    /// A string field is not valid UTF-8.
    BadUtf8,
    /// Unknown event or collective tag byte.
    BadTag(u8),
    /// Trailing garbage after the last stream.
    TrailingBytes(usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a masim trace (bad magic)"),
            DecodeError::BadVersion(v) => write!(f, "unsupported trace format version {v}"),
            DecodeError::Truncated { context } => write!(f, "trace truncated while reading {context}"),
            DecodeError::BadUtf8 => write!(f, "non-UTF-8 string field"),
            DecodeError::BadTag(t) => write!(f, "unknown record tag {t}"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after trace"),
        }
    }
}

impl std::error::Error for DecodeError {}

// Event tag bytes.
const TAG_COMPUTE: u8 = 0;
const TAG_SEND: u8 = 1;
const TAG_ISEND: u8 = 2;
const TAG_RECV: u8 = 3;
const TAG_IRECV: u8 = 4;
const TAG_WAIT: u8 = 5;
const TAG_WAITALL: u8 = 6;
const TAG_COLL: u8 = 7;

/// Serialize a trace to its binary form.
pub fn encode(trace: &Trace) -> Bytes {
    // Rough pre-size: 16 bytes/event average avoids most reallocation.
    let mut buf = BytesMut::with_capacity(64 + trace.num_events() * 16);
    buf.put_slice(MAGIC);
    buf.put_u32_le(FORMAT_VERSION);
    put_string(&mut buf, &trace.meta.app);
    put_string(&mut buf, &trace.meta.machine);
    buf.put_u32_le(trace.meta.ranks);
    buf.put_u32_le(trace.meta.ranks_per_node);
    buf.put_u32_le(trace.meta.problem_size);
    buf.put_u64_le(trace.meta.seed);
    for stream in &trace.events {
        buf.put_u64_le(stream.len() as u64);
        for e in stream {
            put_event(&mut buf, e);
        }
    }
    buf.freeze()
}

/// Deserialize a trace from its binary form.
pub fn decode(mut buf: &[u8]) -> Result<Trace, DecodeError> {
    if buf.remaining() < 8 {
        return Err(DecodeError::Truncated { context: "header" });
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = buf.get_u32_le();
    if version != FORMAT_VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let app = get_string(&mut buf)?;
    let machine = get_string(&mut buf)?;
    if buf.remaining() < 4 * 3 + 8 {
        return Err(DecodeError::Truncated { context: "meta" });
    }
    let ranks = buf.get_u32_le();
    let ranks_per_node = buf.get_u32_le();
    let problem_size = buf.get_u32_le();
    let seed = buf.get_u64_le();
    let meta = TraceMeta { app, machine, ranks, ranks_per_node, problem_size, seed };

    let mut events = Vec::with_capacity(ranks as usize);
    for _ in 0..ranks {
        if buf.remaining() < 8 {
            return Err(DecodeError::Truncated { context: "stream length" });
        }
        let n = buf.get_u64_le() as usize;
        let mut stream = Vec::with_capacity(n);
        for _ in 0..n {
            stream.push(get_event(&mut buf)?);
        }
        events.push(stream);
    }
    if buf.has_remaining() {
        return Err(DecodeError::TrailingBytes(buf.remaining()));
    }
    Ok(Trace { meta, events })
}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_string(buf: &mut &[u8]) -> Result<String, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated { context: "string length" });
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(DecodeError::Truncated { context: "string body" });
    }
    let bytes = buf.copy_to_bytes(len);
    String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
}

fn put_event(buf: &mut BytesMut, e: &Event) {
    match &e.kind {
        EventKind::Compute => {
            buf.put_u8(TAG_COMPUTE);
            buf.put_u64_le(e.dur.as_ps());
        }
        EventKind::Send { peer, bytes, tag } => {
            buf.put_u8(TAG_SEND);
            buf.put_u64_le(e.dur.as_ps());
            buf.put_u32_le(peer.0);
            buf.put_u64_le(*bytes);
            buf.put_u32_le(*tag);
        }
        EventKind::Isend { peer, bytes, tag, req } => {
            buf.put_u8(TAG_ISEND);
            buf.put_u64_le(e.dur.as_ps());
            buf.put_u32_le(peer.0);
            buf.put_u64_le(*bytes);
            buf.put_u32_le(*tag);
            buf.put_u32_le(req.0);
        }
        EventKind::Recv { peer, bytes, tag } => {
            buf.put_u8(TAG_RECV);
            buf.put_u64_le(e.dur.as_ps());
            buf.put_u32_le(peer.0);
            buf.put_u64_le(*bytes);
            buf.put_u32_le(*tag);
        }
        EventKind::Irecv { peer, bytes, tag, req } => {
            buf.put_u8(TAG_IRECV);
            buf.put_u64_le(e.dur.as_ps());
            buf.put_u32_le(peer.0);
            buf.put_u64_le(*bytes);
            buf.put_u32_le(*tag);
            buf.put_u32_le(req.0);
        }
        EventKind::Wait { req } => {
            buf.put_u8(TAG_WAIT);
            buf.put_u64_le(e.dur.as_ps());
            buf.put_u32_le(req.0);
        }
        EventKind::WaitAll { reqs } => {
            buf.put_u8(TAG_WAITALL);
            buf.put_u64_le(e.dur.as_ps());
            buf.put_u32_le(reqs.len() as u32);
            for r in reqs {
                buf.put_u32_le(r.0);
            }
        }
        EventKind::Coll { kind, bytes, root } => {
            buf.put_u8(TAG_COLL);
            buf.put_u64_le(e.dur.as_ps());
            buf.put_u8(kind.code());
            buf.put_u64_le(*bytes);
            buf.put_u32_le(root.0);
        }
    }
}

fn get_event(buf: &mut &[u8]) -> Result<Event, DecodeError> {
    if buf.remaining() < 9 {
        return Err(DecodeError::Truncated { context: "event header" });
    }
    let tag = buf.get_u8();
    let dur = Time::from_ps(buf.get_u64_le());
    let need = |buf: &&[u8], n: usize, ctx: &'static str| {
        if buf.remaining() < n {
            Err(DecodeError::Truncated { context: ctx })
        } else {
            Ok(())
        }
    };
    let kind = match tag {
        TAG_COMPUTE => EventKind::Compute,
        TAG_SEND => {
            need(buf, 16, "send")?;
            let peer = Rank(buf.get_u32_le());
            let bytes = buf.get_u64_le();
            let tag = buf.get_u32_le();
            EventKind::Send { peer, bytes, tag }
        }
        TAG_ISEND => {
            need(buf, 20, "isend")?;
            let peer = Rank(buf.get_u32_le());
            let bytes = buf.get_u64_le();
            let tag = buf.get_u32_le();
            let req = ReqId(buf.get_u32_le());
            EventKind::Isend { peer, bytes, tag, req }
        }
        TAG_RECV => {
            need(buf, 16, "recv")?;
            let peer = Rank(buf.get_u32_le());
            let bytes = buf.get_u64_le();
            let tag = buf.get_u32_le();
            EventKind::Recv { peer, bytes, tag }
        }
        TAG_IRECV => {
            need(buf, 20, "irecv")?;
            let peer = Rank(buf.get_u32_le());
            let bytes = buf.get_u64_le();
            let tag = buf.get_u32_le();
            let req = ReqId(buf.get_u32_le());
            EventKind::Irecv { peer, bytes, tag, req }
        }
        TAG_WAIT => {
            need(buf, 4, "wait")?;
            EventKind::Wait { req: ReqId(buf.get_u32_le()) }
        }
        TAG_WAITALL => {
            need(buf, 4, "waitall count")?;
            let n = buf.get_u32_le() as usize;
            need(buf, n * 4, "waitall reqs")?;
            let reqs = (0..n).map(|_| ReqId(buf.get_u32_le())).collect();
            EventKind::WaitAll { reqs }
        }
        TAG_COLL => {
            need(buf, 13, "collective")?;
            let kind = CollKind::from_code(buf.get_u8()).ok_or(DecodeError::BadTag(255))?;
            let bytes = buf.get_u64_le();
            let root = Rank(buf.get_u32_le());
            EventKind::Coll { kind, bytes, root }
        }
        other => return Err(DecodeError::BadTag(other)),
    };
    Ok(Event { kind, dur })
}

/// Render a trace in the line-oriented text form (one event per line),
/// mirroring `dumpi2ascii` output. Intended for debugging and examples,
/// not as an interchange format.
pub fn to_text(trace: &Trace) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let m = &trace.meta;
    let _ = writeln!(
        out,
        "# masim trace: app={} machine={} ranks={} rpn={} size={} seed={}",
        m.app, m.machine, m.ranks, m.ranks_per_node, m.problem_size, m.seed
    );
    for (r, stream) in trace.events.iter().enumerate() {
        for e in stream {
            let _ = write!(out, "r{r} {} ", e.dur);
            let _ = match &e.kind {
                EventKind::Compute => writeln!(out, "compute"),
                EventKind::Send { peer, bytes, tag } => writeln!(out, "send -> {peer} {bytes}B tag={tag}"),
                EventKind::Isend { peer, bytes, tag, req } => {
                    writeln!(out, "isend -> {peer} {bytes}B tag={tag} {req}")
                }
                EventKind::Recv { peer, bytes, tag } => writeln!(out, "recv <- {peer} {bytes}B tag={tag}"),
                EventKind::Irecv { peer, bytes, tag, req } => {
                    writeln!(out, "irecv <- {peer} {bytes}B tag={tag} {req}")
                }
                EventKind::Wait { req } => writeln!(out, "wait {req}"),
                EventKind::WaitAll { reqs } => writeln!(out, "waitall x{}", reqs.len()),
                EventKind::Coll { kind, bytes, root } => {
                    writeln!(out, "coll {kind} {bytes}B root={root}")
                }
            };
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let meta = TraceMeta {
            app: "CG".into(),
            machine: "edison".into(),
            ranks: 2,
            ranks_per_node: 2,
            problem_size: 3,
            seed: 42,
        };
        let mut t = Trace::empty(meta);
        t.events[0] = vec![
            Event::compute(Time::from_us(10)),
            Event::new(EventKind::Isend { peer: Rank(1), bytes: 4096, tag: 1, req: ReqId(0) }, Time::from_ns(300)),
            Event::new(EventKind::Irecv { peer: Rank(1), bytes: 4096, tag: 2, req: ReqId(1) }, Time::from_ns(200)),
            Event::new(EventKind::WaitAll { reqs: vec![ReqId(0), ReqId(1)] }, Time::from_us(2)),
            Event::new(EventKind::Coll { kind: CollKind::Allreduce, bytes: 8, root: Rank(0) }, Time::from_us(5)),
        ];
        t.events[1] = vec![
            Event::compute(Time::from_us(11)),
            Event::new(EventKind::Irecv { peer: Rank(0), bytes: 4096, tag: 1, req: ReqId(0) }, Time::from_ns(200)),
            Event::new(EventKind::Isend { peer: Rank(0), bytes: 4096, tag: 2, req: ReqId(1) }, Time::from_ns(300)),
            Event::new(EventKind::Wait { req: ReqId(0) }, Time::from_us(1)),
            Event::new(EventKind::Wait { req: ReqId(1) }, Time::from_us(1)),
            Event::new(EventKind::Coll { kind: CollKind::Allreduce, bytes: 8, root: Rank(0) }, Time::from_us(5)),
        ];
        t
    }

    #[test]
    fn round_trip() {
        let t = sample();
        let bytes = encode(&t);
        let t2 = decode(&bytes).expect("decode");
        assert_eq!(t, t2);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode(&sample()).to_vec();
        bytes[0] = b'X';
        assert_eq!(decode(&bytes), Err(DecodeError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = encode(&sample()).to_vec();
        bytes[4] = 99;
        assert!(matches!(decode(&bytes), Err(DecodeError::BadVersion(_))));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let bytes = encode(&sample()).to_vec();
        // Every proper prefix must fail cleanly, never panic.
        for cut in 0..bytes.len() {
            let r = decode(&bytes[..cut]);
            assert!(r.is_err(), "prefix of {cut} bytes unexpectedly decoded");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode(&sample()).to_vec();
        bytes.push(0);
        assert_eq!(decode(&bytes), Err(DecodeError::TrailingBytes(1)));
    }

    #[test]
    fn unknown_tag_rejected() {
        let t = sample();
        let mut bytes = encode(&t).to_vec();
        // First event tag byte sits right after header+meta; find it by
        // re-encoding an empty trace of the same meta and using its length.
        let empty = Trace::empty(t.meta.clone());
        let off = encode(&empty).len() - 2 * 8 + 8; // after rank0's count
        bytes[off] = 250;
        assert!(matches!(decode(&bytes), Err(DecodeError::BadTag(250))));
    }

    #[test]
    fn text_rendering_mentions_all_events() {
        let txt = to_text(&sample());
        for needle in ["compute", "isend", "irecv", "waitall", "wait", "Allreduce", "# masim trace"] {
            assert!(txt.contains(needle), "missing {needle} in text dump:\n{txt}");
        }
    }
}
