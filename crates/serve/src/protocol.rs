//! The wire protocol: length-prefixed JSON frames and the typed
//! request vocabulary.
//!
//! Every message — in both directions — is one **frame**: a 4-byte
//! big-endian length followed by that many bytes of UTF-8 JSON. Framing
//! keeps the stream self-synchronizing (a reader never has to scan for
//! delimiters inside JSON strings) and lets the server stream many
//! frames per request: a `submit` answers with `accepted`, then a
//! `progress`/`sidecar` frame per completed trace, then `report` and
//! `done`.
//!
//! Decoding is guarded the same way the trace decoder is (see
//! `failure_injection.rs`): the length is validated against
//! [`MAX_FRAME_LEN`] **before** any allocation, truncation at any byte
//! is a typed [`ServeError::Truncated`], and malformed bodies surface
//! the JSON parser's typed error — a hostile or corrupt peer can never
//! panic the daemon or abort the allocator.

use masim_core::session::{SessionSpec, StudyKind};
use masim_obs::json::{parse, Value};
use std::fmt;
use std::io::{Read, Write};

/// Hard ceiling on one frame's body (64 MiB). The largest legitimate
/// frame — a full-corpus packet sidecar — is far below this; anything
/// bigger is a corrupt or hostile length prefix and is refused before
/// the body buffer is allocated.
pub const MAX_FRAME_LEN: u64 = 1 << 26;

/// Everything that can go wrong speaking the protocol. Every decode
/// fault lands here as a typed variant — no panics, no unchecked
/// allocations.
#[derive(Debug)]
pub enum ServeError {
    /// A length prefix exceeded [`MAX_FRAME_LEN`]; nothing was
    /// allocated.
    FrameTooLarge {
        /// The length the prefix claimed.
        len: u64,
        /// The configured ceiling.
        max: u64,
    },
    /// The stream ended mid-frame (torn prefix or torn body).
    Truncated {
        /// Bytes actually read.
        got: usize,
        /// Bytes the frame required.
        want: usize,
    },
    /// The body was not valid UTF-8 JSON.
    BadJson {
        /// The parser's diagnosis.
        reason: String,
    },
    /// The frame parsed but does not describe a valid request.
    BadRequest {
        /// What was wrong with it.
        reason: String,
    },
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// Transport failure.
    Io(std::io::Error),
    /// The server answered with an `error` frame (client side).
    Remote {
        /// The server-side [`ServeError::kind`] code.
        kind: String,
        /// Human-readable server message.
        message: String,
    },
}

impl ServeError {
    /// Short stable code for `error` frames and assertions.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::FrameTooLarge { .. } => "frame-too-large",
            ServeError::Truncated { .. } => "truncated",
            ServeError::BadJson { .. } => "bad-json",
            ServeError::BadRequest { .. } => "bad-request",
            ServeError::Closed => "closed",
            ServeError::Io(_) => "io",
            ServeError::Remote { .. } => "remote",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::FrameTooLarge { len, max } => {
                write!(f, "frame length {len} exceeds the {max}-byte ceiling")
            }
            ServeError::Truncated { got, want } => {
                write!(f, "stream truncated mid-frame ({got} of {want} bytes)")
            }
            ServeError::BadJson { reason } => write!(f, "frame body is not valid JSON: {reason}"),
            ServeError::BadRequest { reason } => write!(f, "bad request: {reason}"),
            ServeError::Closed => write!(f, "peer closed the connection"),
            ServeError::Io(e) => write!(f, "transport error: {e}"),
            ServeError::Remote { kind, message } => write!(f, "server error [{kind}]: {message}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> ServeError {
        ServeError::Io(e)
    }
}

/// Read exactly `buf.len()` bytes, tolerating short reads; returns how
/// many bytes arrived before EOF.
fn read_fully(r: &mut impl Read, buf: &mut [u8]) -> Result<usize, ServeError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ServeError::Io(e)),
        }
    }
    Ok(got)
}

/// Read one frame. Clean EOF between frames is [`ServeError::Closed`];
/// EOF inside a frame is [`ServeError::Truncated`]; an oversized length
/// prefix is refused before the body buffer exists.
pub fn read_frame(r: &mut impl Read) -> Result<Value, ServeError> {
    let mut prefix = [0u8; 4];
    let got = read_fully(r, &mut prefix)?;
    if got == 0 {
        return Err(ServeError::Closed);
    }
    if got < 4 {
        return Err(ServeError::Truncated { got, want: 4 });
    }
    let len = u64::from(u32::from_be_bytes(prefix));
    if len > MAX_FRAME_LEN {
        return Err(ServeError::FrameTooLarge { len, max: MAX_FRAME_LEN });
    }
    let mut body = vec![0u8; len as usize];
    let got = read_fully(r, &mut body)?;
    if got < body.len() {
        return Err(ServeError::Truncated { got, want: body.len() });
    }
    let text = std::str::from_utf8(&body)
        .map_err(|e| ServeError::BadJson { reason: format!("frame is not UTF-8: {e}") })?;
    parse(text).map_err(|e| ServeError::BadJson { reason: e.to_string() })
}

/// Write one frame (length prefix + JSON body) and flush it.
pub fn write_frame(w: &mut impl Write, v: &Value) -> Result<(), ServeError> {
    let body = v.to_json();
    let len = body.len() as u64;
    if len > MAX_FRAME_LEN {
        return Err(ServeError::FrameTooLarge { len, max: MAX_FRAME_LEN });
    }
    w.write_all(&(len as u32).to_be_bytes())?;
    w.write_all(body.as_bytes())?;
    w.flush()?;
    Ok(())
}

/// The five request operations a client can send.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Run (or serve from cache) the study described by `spec`.
    Submit(SessionSpec),
    /// List every session this daemon has seen, plus server counters.
    Status,
    /// Replay a completed session's stored frames.
    Results {
        /// Session id from an earlier `accepted` frame.
        session: String,
    },
    /// Halt a running session's dispatch (completed entries are kept).
    Cancel {
        /// Session id to cancel.
        session: String,
    },
    /// Stop accepting connections and exit the accept loop.
    Shutdown,
}

impl Request {
    /// Short op name (also the wire `op` field).
    pub fn op(&self) -> &'static str {
        match self {
            Request::Submit(_) => "submit",
            Request::Status => "status",
            Request::Results { .. } => "results",
            Request::Cancel { .. } => "cancel",
            Request::Shutdown => "shutdown",
        }
    }

    /// Encode for the wire.
    pub fn to_value(&self) -> Value {
        let mut fields = vec![("op".to_string(), Value::Str(self.op().to_string()))];
        match self {
            Request::Submit(spec) => {
                fields.push(("seed".into(), Value::UInt(spec.seed)));
                match &spec.kind {
                    StudyKind::Table2 { tiny } => {
                        fields.push(("study".into(), Value::Str("table2".into())));
                        fields.push(("tiny".into(), Value::Bool(*tiny)));
                    }
                    StudyKind::Corpus { indices } => {
                        fields.push(("study".into(), Value::Str("corpus".into())));
                        if let Some(idx) = indices {
                            let arr = idx.iter().map(|&i| Value::UInt(i as u64)).collect();
                            fields.push(("indices".into(), Value::Arr(arr)));
                        }
                    }
                }
            }
            Request::Results { session } | Request::Cancel { session } => {
                fields.push(("session".into(), Value::Str(session.clone())));
            }
            Request::Status | Request::Shutdown => {}
        }
        Value::Obj(fields)
    }

    /// Decode from the wire; anything structurally off is a typed
    /// [`ServeError::BadRequest`].
    pub fn from_value(v: &Value) -> Result<Request, ServeError> {
        let bad = |reason: String| ServeError::BadRequest { reason };
        let op = v
            .get("op")
            .and_then(Value::as_str)
            .ok_or_else(|| bad("missing string field 'op'".into()))?;
        let session = |v: &Value| -> Result<String, ServeError> {
            Ok(v.get("session")
                .and_then(Value::as_str)
                .ok_or_else(|| bad(format!("op '{op}' needs a string field 'session'")))?
                .to_string())
        };
        Ok(match op {
            "status" => Request::Status,
            "shutdown" => Request::Shutdown,
            "results" => Request::Results { session: session(v)? },
            "cancel" => Request::Cancel { session: session(v)? },
            "submit" => {
                let seed = v.get("seed").and_then(Value::as_u64).unwrap_or(7);
                let study = v
                    .get("study")
                    .and_then(Value::as_str)
                    .ok_or_else(|| bad("submit needs a string field 'study'".into()))?;
                let kind = match study {
                    "table2" => StudyKind::Table2 {
                        tiny: v.get("tiny").and_then(Value::as_bool).unwrap_or(false),
                    },
                    "corpus" => {
                        let indices = match v.get("indices") {
                            None | Some(Value::Null) => None,
                            Some(Value::Arr(items)) => {
                                let mut idx = Vec::with_capacity(items.len());
                                for (i, item) in items.iter().enumerate() {
                                    idx.push(
                                        item.as_u64().ok_or_else(|| {
                                            bad(format!("indices[{i}] is not a u64"))
                                        })? as usize,
                                    );
                                }
                                Some(idx)
                            }
                            Some(_) => return Err(bad("'indices' is not an array".into())),
                        };
                        StudyKind::Corpus { indices }
                    }
                    other => return Err(bad(format!("unknown study kind {other:?}"))),
                };
                Request::Submit(SessionSpec { kind, seed })
            }
            other => return Err(bad(format!("unknown op {other:?}"))),
        })
    }
}

/// The `error` frame for a [`ServeError`].
pub fn error_frame(e: &ServeError) -> Value {
    Value::Obj(vec![
        ("frame".into(), Value::Str("error".into())),
        ("kind".into(), Value::Str(e.kind().into())),
        ("message".into(), Value::Str(e.to_string())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let v = Request::Submit(SessionSpec { kind: StudyKind::Table2 { tiny: true }, seed: 7 })
            .to_value();
        let mut buf = Vec::new();
        write_frame(&mut buf, &v).unwrap();
        let back = read_frame(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(back.to_json(), v.to_json());
        // And a second frame on the same stream.
        write_frame(&mut buf, &Request::Status.to_value()).unwrap();
        let mut cur = Cursor::new(&buf);
        read_frame(&mut cur).unwrap();
        assert_eq!(Request::from_value(&read_frame(&mut cur).unwrap()).unwrap(), Request::Status);
        assert!(matches!(read_frame(&mut cur), Err(ServeError::Closed)));
    }

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Submit(SessionSpec { kind: StudyKind::Table2 { tiny: false }, seed: 9 }),
            Request::Submit(SessionSpec {
                kind: StudyKind::Corpus { indices: Some(vec![3, 40]) },
                seed: 7,
            }),
            Request::Submit(SessionSpec { kind: StudyKind::Corpus { indices: None }, seed: 7 }),
            Request::Status,
            Request::Results { session: "aa0001".into() },
            Request::Cancel { session: "bb0002".into() },
            Request::Shutdown,
        ];
        for r in reqs {
            assert_eq!(Request::from_value(&r.to_value()).unwrap(), r);
        }
    }

    #[test]
    fn oversized_prefix_is_refused_before_allocation() {
        let mut buf = u32::MAX.to_be_bytes().to_vec();
        buf.extend_from_slice(b"{}");
        // If read_frame allocated the claimed 4 GiB this test would OOM
        // long before the assert.
        let err = read_frame(&mut Cursor::new(&buf)).unwrap_err();
        assert!(matches!(err, ServeError::FrameTooLarge { len, .. } if len == u64::from(u32::MAX)));
    }

    #[test]
    fn bad_requests_are_typed() {
        for text in [
            "{}",
            "{\"op\":\"fly\"}",
            "{\"op\":\"submit\"}",
            "{\"op\":\"submit\",\"study\":\"tableX\"}",
            "{\"op\":\"submit\",\"study\":\"corpus\",\"indices\":3}",
            "{\"op\":\"submit\",\"study\":\"corpus\",\"indices\":[\"x\"]}",
            "{\"op\":\"cancel\"}",
            "[1,2,3]",
        ] {
            let v = parse(text).unwrap();
            let err = Request::from_value(&v).unwrap_err();
            assert_eq!(err.kind(), "bad-request", "{text}: {err}");
        }
    }
}
