//! The three network models: packet, flow, and hybrid packet-flow.
//!
//! All three route messages over the machine's topology and model
//! contention on shared directed links — the capability MFACT lacks by
//! design. They differ in granularity and cost, exactly as Section II of
//! the paper lays out:
//!
//! * [`PacketNet`] — every message becomes packets; each packet reserves
//!   each route link exclusively (FIFO per link). Most accurate queueing,
//!   most events (one DES event per packet per hop), and the documented
//!   serialization *over*estimate for multi-hop messages.
//! * [`FlowNet`] — messages are fluid flows sharing link bandwidth
//!   max-min fairly; flow arrivals/departures re-solve the rates and
//!   reschedule completions (the "ripple effect"). Re-solves are batched
//!   per timestamp and only changed rates are rescheduled. Flows live in
//!   a `Vec`-backed slab with a free list — no hashing on the arrival,
//!   re-solve, or completion paths.
//! * [`PFlowNet`] — coarse packets *sample* per-link fluid queues at
//!   injection time and accumulate expected waiting, serialization, and
//!   hop latency arithmetically: channel multiplexing without per-hop
//!   events. SST/Macro 6.1's recommended model.
//!
//! ## Link provisioning
//!
//! The paper characterizes each machine by a per-process Hockney (α, β):
//! those are *application-achievable* figures, so the simulated fabric
//! must reproduce them in the uncongested limit. Each rank therefore
//! gets its own injection and ejection link at the Hockney bandwidth
//! (Gemini/Aries NICs provision multiple channels per node), while
//! switch-to-switch fabric links carry node-aggregated capacity
//! (`β⁻¹ × cores_per_node`). Contention then arises exactly where it
//! does on the real machine: on oversubscribed fabric paths and at
//! incast ejection points — not from an artificial 24-way NIC bottleneck
//! that the per-process calibration already excludes.

use crate::runner::{SimEvent, SimState};
use masim_des::{Engine, EventId};
use masim_obs::MetricSet;
use masim_topo::{LinkId, Machine};
use masim_trace::{Rank, Time};
use std::sync::Arc;

/// Message metadata shared by in-flight packets/flows.
#[derive(Debug)]
pub struct MsgMeta {
    /// Unique message id.
    pub id: u64,
    /// Source rank.
    pub src: Rank,
    /// Destination rank.
    pub dst: Rank,
    /// Payload bytes.
    pub bytes: u64,
    /// Matching tag.
    pub tag: u32,
}

/// Which network model to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ModelKind {
    /// Packet-level with exclusive channel reservation.
    Packet {
        /// Packet size in bytes (SST recommends 1–8 KiB).
        packet_bytes: u64,
    },
    /// Fluid max-min fair flows.
    Flow,
    /// Hybrid packet-flow (congestion-sampling coarse packets).
    PacketFlow {
        /// Coarse packet size in bytes.
        packet_bytes: u64,
    },
}

impl ModelKind {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Packet { .. } => "packet",
            ModelKind::Flow => "flow",
            ModelKind::PacketFlow { .. } => "packet-flow",
        }
    }
}

/// The simulated link table: directed fabric links from the topology
/// plus one virtual injection and ejection link per rank.
pub struct LinkTable {
    /// Per-link capacity in bytes/second.
    caps: Vec<f64>,
    /// Per-hop propagation latency.
    hop_lat: Time,
    /// Number of topology links (virtual per-rank links follow).
    topo_links: u32,
    ranks: u32,
}

impl LinkTable {
    /// Build the table for `machine` hosting `ranks` ranks.
    pub fn new(machine: &Machine, ranks: u32) -> LinkTable {
        let topo_links = machine.topology.num_links();
        let rank_cap = machine.net.bandwidth.bytes_per_sec();
        let fabric_cap = rank_cap * machine.cores_per_node as f64;
        let mut caps = vec![fabric_cap; topo_links as usize];
        caps.extend(std::iter::repeat_n(rank_cap, 2 * ranks as usize));
        LinkTable { caps, hop_lat: machine.hop_latency(), topo_links, ranks }
    }

    /// Total number of links (fabric + virtual).
    pub fn len(&self) -> usize {
        self.caps.len()
    }

    /// True when the table is empty (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.caps.is_empty()
    }

    /// Capacity of a link in bytes/second.
    #[inline]
    pub fn cap(&self, l: LinkId) -> f64 {
        self.caps[l.idx()]
    }

    /// Per-hop latency.
    #[inline]
    pub fn hop_lat(&self) -> Time {
        self.hop_lat
    }

    /// Serialization time of `bytes` on link `l`.
    #[inline]
    pub fn ser(&self, l: LinkId, bytes: u64) -> Time {
        Time::from_secs_f64(bytes as f64 / self.caps[l.idx()])
    }

    /// Virtual injection link of a rank.
    pub fn injection(&self, r: Rank) -> LinkId {
        LinkId(self.topo_links + r.0)
    }

    /// Virtual ejection link of a rank.
    pub fn ejection(&self, r: Rank) -> LinkId {
        LinkId(self.topo_links + self.ranks + r.0)
    }

    /// Build the simulated route for a message: per-rank injection, the
    /// topology's fabric hops, per-rank ejection.
    pub fn route(
        &self,
        machine: &Machine,
        src: Rank,
        dst: Rank,
        src_node: masim_trace::NodeId,
        dst_node: masim_trace::NodeId,
    ) -> Arc<[LinkId]> {
        let topo_route = machine.topology.route_vec(src_node, dst_node);
        debug_assert!(topo_route.len() >= 2);
        let mut route = Vec::with_capacity(topo_route.len());
        route.push(self.injection(src));
        route.extend_from_slice(&topo_route[1..topo_route.len() - 1]);
        route.push(self.ejection(dst));
        route.into()
    }
}

/// Model state (one variant active per simulation).
pub enum NetState {
    /// Packet model state.
    Packet(PacketNet),
    /// Flow model state.
    Flow(FlowNet),
    /// Packet-flow model state.
    PFlow(PFlowNet),
}

impl NetState {
    /// Fresh state for `kind` on a machine with `links` total links
    /// (fabric + virtual). All per-link vectors are pre-sized from the
    /// topology so the hot path never grows them.
    pub fn new(kind: ModelKind, links: usize) -> NetState {
        match kind {
            ModelKind::Packet { packet_bytes } => NetState::Packet(PacketNet {
                packet_bytes: packet_bytes.max(64),
                free_at: vec![Time::ZERO; links],
                link_bytes: vec![0; links],
                packets: 0,
                hops: 0,
            }),
            ModelKind::Flow => NetState::Flow(FlowNet {
                slots: Vec::new(),
                free: Vec::new(),
                live: 0,
                link_bytes: vec![0; links],
                recomputes: 0,
                resolve_pending: false,
                scr_residual: vec![0.0; links],
                scr_count: vec![0; links],
                scr_touched: Vec::with_capacity(links.min(1024)),
            }),
            ModelKind::PacketFlow { packet_bytes } => NetState::PFlow(PFlowNet {
                packet_bytes: packet_bytes.max(64),
                queues: vec![FluidQueue::default(); links],
                link_bytes: vec![0; links],
                packets: 0,
            }),
        }
    }

    /// Total bytes charged to each directed link (for utilization
    /// reports).
    pub fn link_bytes(&self) -> &[u64] {
        match self {
            NetState::Packet(p) => &p.link_bytes,
            NetState::Flow(f) => &f.link_bytes,
            NetState::PFlow(p) => &p.link_bytes,
        }
    }

    /// Model-specific work counter (packets routed or rate re-solves).
    pub fn work_units(&self) -> u64 {
        match self {
            NetState::Packet(p) => p.packets,
            NetState::Flow(f) => f.recomputes,
            NetState::PFlow(p) => p.packets,
        }
    }

    /// Export the model's telemetry into an observability sink. Plain
    /// integer fields accumulate in the hot path; this copies them out
    /// once after the run, so instrumentation cannot perturb the
    /// simulation.
    pub fn export_metrics(&self, ms: &MetricSet) {
        match self {
            NetState::Packet(p) => {
                ms.add("sim.packet.packets", p.packets);
                ms.add("sim.packet.hops", p.hops);
            }
            NetState::Flow(f) => ms.add("sim.flow.resolves", f.recomputes),
            NetState::PFlow(p) => ms.add("sim.pflow.packets", p.packets),
        }
        let lb = self.link_bytes();
        ms.add("sim.link.bytes_total", lb.iter().sum::<u64>());
        ms.gauge_max("sim.link.bytes_max", lb.iter().copied().max().unwrap_or(0));
        ms.add("sim.link.links_used", lb.iter().filter(|&&b| b > 0).count() as u64);
    }
}

/// Inject a message; the model schedules [`SimEvent::Release`] (sender
/// may reuse its buffer) and [`SimEvent::Deliver`] (payload at
/// destination) events.
pub fn inject(eng: &mut Engine<SimState>, st: &mut SimState, msg: MsgMeta) {
    let src_node = st.mapping.node_of(msg.src);
    let dst_node = st.mapping.node_of(msg.dst);

    if src_node == dst_node {
        // Intra-node: uncontended Hockney transfer, same cost model as
        // MFACT so the tools agree on local traffic.
        let ser = st.machine.net.bandwidth.transfer_time(msg.bytes);
        let release = eng.now() + ser;
        let deliver = eng.now() + st.machine.net.latency + ser;
        eng.schedule_at(release, SimEvent::Release { src: msg.src, msg: msg.id });
        eng.schedule_at(
            deliver,
            SimEvent::Deliver { dst: msg.dst, src: msg.src, tag: msg.tag, msg: msg.id },
        );
        return;
    }

    // Routes are deterministic per rank pair; cache them so repeated
    // traffic (iterative stencils, collective rounds) skips the
    // per-message route walk and allocation.
    let route = match st.route_cache.get(&(msg.src.0, msg.dst.0)) {
        Some(r) => Arc::clone(r),
        None => {
            let r = st.links.route(&st.machine, msg.src, msg.dst, src_node, dst_node);
            st.route_cache.insert((msg.src.0, msg.dst.0), Arc::clone(&r));
            r
        }
    };
    match &mut st.net {
        NetState::Packet(p) => p.inject(eng, msg, route),
        NetState::Flow(f) => f.inject(eng, msg, route),
        NetState::PFlow(p) => {
            // Split borrows: the link table is read-only during sampling.
            let links = &st.links;
            p.inject(eng, msg, route, links)
        }
    }
}

// ---------------------------------------------------------------------
// Packet model
// ---------------------------------------------------------------------

/// Exclusive-reservation packet network.
pub struct PacketNet {
    packet_bytes: u64,
    /// Earliest time each directed link is free.
    free_at: Vec<Time>,
    link_bytes: Vec<u64>,
    packets: u64,
    hops: u64,
}

/// One in-flight packet (the payload of [`SimEvent::PacketHop`]);
/// internals are private to the packet model.
pub struct Packet {
    msg: Arc<MsgMeta>,
    route: Arc<[LinkId]>,
    hop: usize,
    bytes: u64,
    is_last: bool,
}

impl PacketNet {
    fn inject(&mut self, eng: &mut Engine<SimState>, msg: MsgMeta, route: Arc<[LinkId]>) {
        let n_packets = msg.bytes.div_ceil(self.packet_bytes).max(1);
        let msg = Arc::new(msg);
        self.packets += n_packets;
        let mut rem = msg.bytes.max(1);
        for i in 0..n_packets {
            let bytes = rem.min(self.packet_bytes);
            rem -= bytes.min(rem);
            let pkt = Packet {
                msg: Arc::clone(&msg),
                route: Arc::clone(&route),
                hop: 0,
                bytes,
                is_last: i + 1 == n_packets,
            };
            // All packets present at the NIC now; the injection link's
            // FIFO serializes them.
            eng.schedule_at(eng.now(), SimEvent::PacketHop(pkt));
        }
    }
}

/// One packet crossing one link: reserve it, then either hop onward or
/// deliver.
pub(crate) fn packet_hop(eng: &mut Engine<SimState>, st: &mut SimState, mut pkt: Packet) {
    let link = pkt.route[pkt.hop];
    let ser = st.links.ser(link, pkt.bytes);
    let hop_lat = st.links.hop_lat();
    let NetState::Packet(net) = &mut st.net else {
        unreachable!("packet event in non-packet model")
    };
    let start = eng.now().max(net.free_at[link.idx()]);
    let depart = start + ser;
    net.free_at[link.idx()] = depart;
    net.link_bytes[link.idx()] += pkt.bytes;
    net.hops += 1;
    let arrive_next = depart + hop_lat;

    // Sender may reuse its buffer once the last packet clears the NIC.
    if pkt.hop == 0 && pkt.is_last {
        eng.schedule_at(depart, SimEvent::Release { src: pkt.msg.src, msg: pkt.msg.id });
    }

    pkt.hop += 1;
    if pkt.hop == pkt.route.len() {
        if pkt.is_last {
            let m = &pkt.msg;
            eng.schedule_at(
                arrive_next,
                SimEvent::Deliver { dst: m.dst, src: m.src, tag: m.tag, msg: m.id },
            );
        }
    } else {
        eng.schedule_at(arrive_next, SimEvent::PacketHop(pkt));
    }
}

// ---------------------------------------------------------------------
// Flow model
// ---------------------------------------------------------------------

/// Flow-model event-aggregation quantum: arrivals, rate re-solves, and
/// completions snap to this grid (1 µs — far below every latency scale
/// in the study, so predictions move by well under a percent while the
/// ripple cost drops by orders of magnitude).
const FLOW_QUANTUM_PS: u64 = 1_000_000;

/// A fluid flow in flight.
struct Flow {
    msg: Arc<MsgMeta>,
    route: Arc<[LinkId]>,
    remaining: f64,
    rate: f64, // bytes/sec
    last_update: Time,
    completion: Option<EventId>,
    tail_latency: Time,
}

/// Max-min fair fluid network.
///
/// Active flows live in `slots`, a `Vec`-backed slab with a free list:
/// arrivals reuse freed slots, completions are O(1) removals, and the
/// per-resolve settle pass is a dense scan instead of a hash-map walk.
/// Re-solve ordering is still by message id (collected and sorted per
/// resolve), so rate assignment and completion scheduling are
/// slot-layout-independent — bit-identical to the old `HashMap` keyed
/// implementation.
pub struct FlowNet {
    slots: Vec<Option<Flow>>,
    free: Vec<u32>,
    /// Live (in-flight) flow count.
    live: usize,
    link_bytes: Vec<u64>,
    /// Flow updates performed across all re-solves (the ripple-effect
    /// cost metric: every settled flow per re-solve counts).
    recomputes: u64,
    /// A re-solve event is already queued for the current timestamp.
    resolve_pending: bool,
    // Dense scratch buffers reused across re-solves (indexed by link).
    scr_residual: Vec<f64>,
    scr_count: Vec<u32>,
    scr_touched: Vec<u32>,
}

impl FlowNet {
    fn inject(&mut self, eng: &mut Engine<SimState>, msg: MsgMeta, route: Arc<[LinkId]>) {
        for l in route.iter() {
            self.link_bytes[l.idx()] += msg.bytes;
        }
        let bytes = msg.bytes.max(1) as f64;
        let flow = Flow {
            msg: Arc::new(msg),
            route,
            remaining: bytes,
            rate: 0.0,
            last_update: eng.now(),
            completion: None,
            tail_latency: Time::ZERO, // patched in the resolve, which has the link table
        };
        match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.slots[slot as usize].is_none());
                self.slots[slot as usize] = Some(flow);
            }
            None => {
                assert!(self.slots.len() < u32::MAX as usize, "flow slab exhausted");
                self.slots.push(Some(flow));
            }
        }
        self.live += 1;
        self.schedule_resolve(eng);
    }

    /// Queue one re-solve at the next quantum boundary, batching all
    /// arrivals and departures in the window. Deferring arrivals by up
    /// to [`FLOW_QUANTUM_PS`] collapses a P-flow burst (an all-to-all
    /// round, say) into a single ripple re-solve instead of P of them —
    /// this is why the flow model is cheaper than per-packet simulation,
    /// as the paper's Figure 1 measures.
    fn schedule_resolve(&mut self, eng: &mut Engine<SimState>) {
        if self.resolve_pending {
            return;
        }
        self.resolve_pending = true;
        let at = Time::from_ps((eng.now().as_ps() / FLOW_QUANTUM_PS + 1) * FLOW_QUANTUM_PS);
        eng.schedule_at(at, SimEvent::FlowResolve);
    }
}

/// Dispatch a [`SimEvent::FlowResolve`]: clear the pending flag and
/// re-solve (split borrow: the link table is read-only here).
pub(crate) fn on_flow_resolve(eng: &mut Engine<SimState>, st: &mut SimState) {
    let NetState::Flow(net) = &mut st.net else { unreachable!("flow event in non-flow model") };
    net.resolve_pending = false;
    flow_resolve(eng, net, &st.links);
}

/// Settle elapsed transfer progress, re-solve max-min rates, and
/// reschedule completions whose rate changed (the ripple).
fn flow_resolve(eng: &mut Engine<SimState>, net: &mut FlowNet, links: &LinkTable) {
    net.recomputes += net.live as u64; // every active flow updates
    let now = eng.now();
    // 1. Settle progress at old rates; collect the deterministic
    // (message id, slot) order — by id, not slot, so slab layout never
    // affects scheduling order.
    let mut order: Vec<(u64, u32)> = Vec::with_capacity(net.live);
    for (slot, s) in net.slots.iter_mut().enumerate() {
        let Some(f) = s else { continue };
        let dt = (now - f.last_update).as_secs_f64();
        f.remaining = (f.remaining - f.rate * dt).max(0.0);
        f.last_update = now;
        if f.tail_latency == Time::ZERO {
            f.tail_latency = links.hop_lat() * f.route.len() as u64;
        }
        order.push((f.msg.id, slot as u32));
    }
    order.sort_unstable();

    // 2. Water-filling max-min allocation over the active links, using
    // dense scratch buffers (no per-resolve hashing).
    debug_assert!(net.scr_touched.is_empty());
    for &(_, slot) in &order {
        let f = net.slots[slot as usize].as_ref().expect("flow exists");
        for l in f.route.iter() {
            let i = l.idx();
            if net.scr_count[i] == 0 {
                net.scr_touched.push(l.0);
                net.scr_residual[i] = links.cap(*l);
            }
            net.scr_count[i] += 1;
        }
    }
    let mut rates: Vec<f64> = vec![0.0; order.len()];
    let mut frozen: Vec<bool> = vec![false; order.len()];
    let mut n_frozen = 0usize;
    while n_frozen < order.len() {
        // Tightest link.
        let mut best: Option<(usize, f64)> = None;
        for &l in &net.scr_touched {
            let i = l as usize;
            if net.scr_count[i] == 0 {
                continue;
            }
            let share = net.scr_residual[i] / net.scr_count[i] as f64;
            if best.is_none_or(|(_, s)| share < s) {
                best = Some((i, share));
            }
        }
        let Some((tight, share)) = best else { break };
        // Freeze that link's unfrozen flows at the fair share.
        for (k, &(_, slot)) in order.iter().enumerate() {
            if frozen[k] {
                continue;
            }
            let f = net.slots[slot as usize].as_ref().expect("flow exists");
            if !f.route.iter().any(|l| l.idx() == tight) {
                continue;
            }
            frozen[k] = true;
            rates[k] = share;
            n_frozen += 1;
            for l in f.route.iter() {
                let i = l.idx();
                net.scr_residual[i] = (net.scr_residual[i] - share).max(0.0);
                net.scr_count[i] -= 1;
            }
        }
    }
    // Reset scratch for the next resolve.
    for &l in &net.scr_touched {
        net.scr_count[l as usize] = 0;
    }
    net.scr_touched.clear();

    // 3. Apply rates; reschedule only the completions that moved.
    // Completion times are quantized up to the same grid so that flows
    // draining together complete at the same instant and their removals
    // batch into a single ripple re-solve.
    const QUANTUM_PS: u64 = FLOW_QUANTUM_PS;
    for (k, (id, slot)) in order.into_iter().enumerate() {
        let f = net.slots[slot as usize].as_mut().expect("flow exists");
        let rate = rates[k].max(1.0);
        let rate_changed = (rate - f.rate).abs() > f.rate * 1e-12 + 1e-6;
        f.rate = rate;
        if !rate_changed && f.completion.is_some() {
            continue; // same rate, same remaining trajectory
        }
        if let Some(ev) = f.completion.take() {
            eng.cancel(ev);
        }
        let secs = f.remaining / f.rate;
        let at = now + Time::from_secs_f64(secs);
        let at = Time::from_ps(at.as_ps().div_ceil(QUANTUM_PS) * QUANTUM_PS);
        let ev = eng.schedule_at(at, SimEvent::FlowComplete { slot, msg: id });
        f.completion = Some(ev);
    }
}

/// A flow drained: remove it, ripple the rates, and fire callbacks. The
/// message id double-checks the slot against stale completions for a
/// previous occupant.
pub(crate) fn flow_complete(eng: &mut Engine<SimState>, st: &mut SimState, slot: u32, msg: u64) {
    let NetState::Flow(net) = &mut st.net else { unreachable!("flow event in non-flow model") };
    let flow = match net.slots.get_mut(slot as usize) {
        Some(s) if s.as_ref().is_some_and(|f| f.msg.id == msg) => s.take().expect("checked"),
        _ => return, // stale completion for a recycled slot
    };
    net.free.push(slot);
    net.live -= 1;
    net.schedule_resolve(eng);
    let m = &flow.msg;
    // Sender buffer freed at drain; payload lands after the route's
    // accumulated hop latency.
    let deliver_at = eng.now() + flow.tail_latency;
    eng.schedule_at(eng.now(), SimEvent::Release { src: m.src, msg: m.id });
    eng.schedule_at(
        deliver_at,
        SimEvent::Deliver { dst: m.dst, src: m.src, tag: m.tag, msg: m.id },
    );
}

// ---------------------------------------------------------------------
// Packet-flow model
// ---------------------------------------------------------------------

/// Fluid queue state per link for the congestion-sampling model.
#[derive(Clone, Copy, Debug, Default)]
pub struct FluidQueue {
    backlog: f64, // bytes
    last: Time,
}

impl FluidQueue {
    /// Drain the queue to time `t` at service rate `cap` (bytes/sec),
    /// returning the remaining backlog. Samples arriving out of time
    /// order (a packet-flow approximation artifact) do not rewind the
    /// queue clock.
    fn drained(&self, t: Time, cap: f64) -> f64 {
        if t <= self.last {
            return self.backlog;
        }
        let dt = (t - self.last).as_secs_f64();
        (self.backlog - cap * dt).max(0.0)
    }
}

/// Hybrid packet-flow network: coarse packets sample link congestion.
pub struct PFlowNet {
    packet_bytes: u64,
    queues: Vec<FluidQueue>,
    link_bytes: Vec<u64>,
    packets: u64,
}

impl PFlowNet {
    fn inject(
        &mut self,
        eng: &mut Engine<SimState>,
        msg: MsgMeta,
        route: Arc<[LinkId]>,
        links: &LinkTable,
    ) {
        let n_packets = msg.bytes.div_ceil(self.packet_bytes).max(1);
        self.packets += n_packets;
        let hop_lat = links.hop_lat();
        let mut rem = msg.bytes.max(1);
        let mut release_at = eng.now();
        let mut deliver_at = eng.now();
        for _ in 0..n_packets {
            let bytes = rem.min(self.packet_bytes);
            rem -= bytes.min(rem);
            // Walk the route, sampling each link's expected queueing
            // delay and adding our own bytes to its backlog. Channel
            // multiplexing: the packet's own serialization is charged
            // once (at injection); downstream links charge only their
            // sampled queueing wait plus hop latency, so back-to-back
            // packets pipeline instead of re-serializing per hop (the
            // packet model's documented overestimate).
            let mut t = eng.now();
            for (h, l) in route.iter().enumerate() {
                let cap = links.cap(*l);
                let q = &mut self.queues[l.idx()];
                let backlog = q.drained(t, cap);
                let wait = Time::from_secs_f64(backlog / cap);
                q.backlog = backlog + bytes as f64;
                q.last = q.last.max(t);
                self.link_bytes[l.idx()] += bytes;
                t = t + wait + hop_lat;
                if h == 0 {
                    t += links.ser(*l, bytes);
                    // Injection complete once the packet clears the NIC.
                    release_at = t.saturating_sub(hop_lat);
                }
            }
            deliver_at = t;
        }
        let m = msg;
        eng.schedule_at(release_at.max(eng.now()), SimEvent::Release { src: m.src, msg: m.id });
        eng.schedule_at(
            deliver_at.max(eng.now()),
            SimEvent::Deliver { dst: m.dst, src: m.src, tag: m.tag, msg: m.id },
        );
    }
}
