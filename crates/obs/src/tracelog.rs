//! Bounded ring-buffer timeline tracing.
//!
//! A [`TraceLog`] collects fixed-size [`TraceEvent`] records — completed
//! spans, instants, and counter samples, each stamped with a worker id
//! and a monotonic nanosecond timestamp — into per-thread lanes of
//! bounded capacity. When a lane fills, the oldest records are
//! overwritten (drop-oldest; the drop count is reported so truncation is
//! never silent). Spans are stored as a *single* record carrying start
//! and duration, written when the span closes, so an exported timeline
//! always has balanced begin/end pairs even after ring overflow.
//!
//! Recording goes through the `trace_span!` / `trace_instant!` macros,
//! which consult the process-global log installed by [`install`]. When no
//! log is installed (`repro` without `--trace`) the macros cost one
//! atomic load and a predicted branch; with masim-obs built
//! `--no-default-features` they compile out entirely, mirroring
//! `count!`/`span!`.
//!
//! Exports:
//! * [`TraceLog::to_chrome_json`] — Chrome Trace Event Format (the JSON
//!   loaded by Perfetto / `chrome://tracing`), one track per worker.
//! * [`TraceLog::to_folded`] — folded-stack lines (`a;b;c self_ns`) for
//!   flamegraph tooling.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::json::Value;

/// Default per-lane capacity (records, not bytes).
pub const DEFAULT_LANE_CAPACITY: usize = 1 << 16;

/// What a [`TraceEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A completed span: `start_ns` .. `start_ns + dur_ns`.
    Span,
    /// A point-in-time marker at `start_ns`.
    Instant,
    /// A sampled counter `value` at `start_ns`.
    Counter,
}

/// One fixed-size trace record (32 bytes, `Copy`).
#[derive(Debug, Clone, Copy)]
pub struct TraceEvent {
    /// Monotonic ns since the log's epoch.
    pub start_ns: u64,
    /// Span duration (0 for instants / counter samples).
    pub dur_ns: u64,
    /// Counter sample value (0 otherwise).
    pub value: u64,
    /// Interned name id (see [`TraceLog::name`]).
    pub name: u16,
    /// Worker id — one Perfetto track per worker.
    pub worker: u16,
    pub kind: TraceKind,
}

#[derive(Default)]
struct Names {
    ids: BTreeMap<String, u16>,
    list: Vec<String>,
}

struct Lane {
    worker: u16,
    buf: Vec<TraceEvent>,
    /// Next overwrite slot once the ring is full.
    #[cfg_attr(not(feature = "enabled"), allow(dead_code))]
    next: usize,
    dropped: u64,
}

struct Inner {
    epoch: Instant,
    #[cfg_attr(not(feature = "enabled"), allow(dead_code))]
    lane_capacity: usize,
    names: Mutex<Names>,
    lanes: Mutex<Vec<Arc<Mutex<Lane>>>>,
    next_worker: AtomicU64,
}

/// Shared trace sink. Clone freely; all clones share the lanes.
#[derive(Clone)]
pub struct TraceLog {
    inner: Arc<Inner>,
}

thread_local! {
    // Cache of this thread's lane, keyed by the owning log's identity so
    // tests can juggle several logs on one thread.
    static LANE: std::cell::RefCell<Option<(usize, Arc<Mutex<Lane>>)>> =
        const { std::cell::RefCell::new(None) };
}

impl TraceLog {
    /// A log whose per-thread lanes hold at most `lane_capacity` records.
    pub fn new(lane_capacity: usize) -> Self {
        TraceLog {
            inner: Arc::new(Inner {
                epoch: Instant::now(),
                lane_capacity: lane_capacity.max(16),
                names: Mutex::default(),
                lanes: Mutex::new(Vec::new()),
                next_worker: AtomicU64::new(0),
            }),
        }
    }

    /// Monotonic nanoseconds since this log was created.
    pub fn now_ns(&self) -> u64 {
        self.inner.epoch.elapsed().as_nanos() as u64
    }

    fn key(&self) -> usize {
        Arc::as_ptr(&self.inner) as usize
    }

    fn lane(&self) -> Arc<Mutex<Lane>> {
        let key = self.key();
        LANE.with(|slot| {
            let mut slot = slot.borrow_mut();
            if let Some((k, lane)) = slot.as_ref() {
                if *k == key {
                    return lane.clone();
                }
            }
            let worker = self.inner.next_worker.fetch_add(1, Ordering::Relaxed) as u16;
            let lane = Arc::new(Mutex::new(Lane { worker, buf: Vec::new(), next: 0, dropped: 0 }));
            self.inner.lanes.lock().expect("trace lanes poisoned").push(lane.clone());
            *slot = Some((key, lane.clone()));
            lane
        })
    }

    /// Bind the calling thread's lane to worker id `w` (the parallel
    /// study runner aligns trace tracks with its worker numbering).
    pub fn set_worker(&self, w: u16) {
        let lane = self.lane();
        lane.lock().expect("trace lane poisoned").worker = w;
    }

    /// Intern `name`, returning its stable id.
    pub fn intern(&self, name: &str) -> u16 {
        let mut names = self.inner.names.lock().expect("trace names poisoned");
        if let Some(id) = names.ids.get(name) {
            return *id;
        }
        // Id space exhausted: fold everything else into one bucket
        // rather than panic mid-run.
        if names.list.len() >= u16::MAX as usize {
            return u16::MAX - 1;
        }
        let id = names.list.len() as u16;
        names.list.push(name.to_string());
        names.ids.insert(name.to_string(), id);
        id
    }

    /// Interned name for `id` ("?" when unknown).
    pub fn name(&self, id: u16) -> String {
        let names = self.inner.names.lock().expect("trace names poisoned");
        names.list.get(id as usize).cloned().unwrap_or_else(|| "?".to_string())
    }

    /// Append one record to the calling thread's lane (drop-oldest on
    /// overflow). Low-level: the macros and guards call this.
    pub fn record(&self, kind: TraceKind, name: u16, start_ns: u64, dur_ns: u64, value: u64) {
        #[cfg(feature = "enabled")]
        {
            let lane = self.lane();
            let mut lane = lane.lock().expect("trace lane poisoned");
            let ev = TraceEvent { start_ns, dur_ns, value, name, worker: lane.worker, kind };
            if lane.buf.len() < self.inner.lane_capacity {
                lane.buf.push(ev);
            } else {
                let slot = lane.next;
                lane.buf[slot] = ev;
                lane.next = (slot + 1) % self.inner.lane_capacity;
                lane.dropped += 1;
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (kind, name, start_ns, dur_ns, value);
        }
    }

    /// Open a span; records one [`TraceKind::Span`] event when dropped.
    pub fn span(&self, name: &str) -> TraceSpan {
        #[cfg(feature = "enabled")]
        {
            TraceSpan { sink: Some((self.clone(), self.intern(name))), start_ns: self.now_ns() }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = name;
            TraceSpan { sink: None, start_ns: 0 }
        }
    }

    /// Record a point-in-time marker.
    pub fn instant(&self, name: &str) {
        let id = self.intern(name);
        self.record(TraceKind::Instant, id, self.now_ns(), 0, 0);
    }

    /// Record a counter sample (rendered as a counter track).
    pub fn counter(&self, name: &str, value: u64) {
        let id = self.intern(name);
        self.record(TraceKind::Counter, id, self.now_ns(), 0, value);
    }

    /// Total records currently buffered across lanes.
    pub fn len(&self) -> usize {
        let lanes = self.inner.lanes.lock().expect("trace lanes poisoned");
        lanes.iter().map(|l| l.lock().expect("trace lane poisoned").buf.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records overwritten by ring overflow, across lanes.
    pub fn dropped(&self) -> u64 {
        let lanes = self.inner.lanes.lock().expect("trace lanes poisoned");
        lanes.iter().map(|l| l.lock().expect("trace lane poisoned").dropped).sum()
    }

    fn collect(&self) -> Vec<TraceEvent> {
        let lanes = self.inner.lanes.lock().expect("trace lanes poisoned");
        let mut out = Vec::new();
        for lane in lanes.iter() {
            out.extend_from_slice(&lane.lock().expect("trace lane poisoned").buf);
        }
        out
    }

    /// Export as Chrome Trace Event Format JSON: `{"traceEvents":[...]}`
    /// with `ph:"B"/"E"` span pairs (balanced by construction — both
    /// sides come from one record), `ph:"i"` instants, `ph:"C"` counter
    /// tracks, and a `thread_name` metadata row per worker. Timestamps
    /// are microseconds as Perfetto expects; per track they are
    /// non-decreasing.
    pub fn to_chrome_json(&self) -> String {
        let events = self.collect();
        let us = |ns: u64| Value::Num(ns as f64 / 1000.0);
        let mut rows: Vec<(u64, Value)> = Vec::new();

        // One metadata row per worker so Perfetto labels the tracks.
        let mut workers: Vec<u16> = events.iter().map(|e| e.worker).collect();
        workers.sort_unstable();
        workers.dedup();
        let mut meta: Vec<Value> = Vec::new();
        for w in &workers {
            meta.push(Value::Obj(vec![
                ("name".into(), Value::Str("thread_name".into())),
                ("ph".into(), Value::Str("M".into())),
                ("pid".into(), Value::UInt(1)),
                ("tid".into(), Value::UInt(*w as u64)),
                (
                    "args".into(),
                    Value::Obj(vec![("name".into(), Value::Str(format!("worker {w}")))]),
                ),
            ]));
        }

        for w in workers {
            let (spans, rest): (Vec<_>, Vec<_>) =
                events.iter().filter(|e| e.worker == w).partition(|e| e.kind == TraceKind::Span);
            for (path, start, end) in nest_spans(&spans) {
                let name = self.name(path);
                let base = |ph: &str, ts: u64| {
                    Value::Obj(vec![
                        ("name".into(), Value::Str(name.clone())),
                        ("ph".into(), Value::Str(ph.into())),
                        ("ts".into(), us(ts)),
                        ("pid".into(), Value::UInt(1)),
                        ("tid".into(), Value::UInt(w as u64)),
                    ])
                };
                rows.push((start, base("B", start)));
                rows.push((end, base("E", end)));
            }
            for e in rest {
                let mut obj = vec![
                    ("name".into(), Value::Str(self.name(e.name))),
                    (
                        "ph".into(),
                        Value::Str(if e.kind == TraceKind::Counter { "C" } else { "i" }.into()),
                    ),
                    ("ts".into(), us(e.start_ns)),
                    ("pid".into(), Value::UInt(1)),
                    ("tid".into(), Value::UInt(e.worker as u64)),
                ];
                if e.kind == TraceKind::Counter {
                    obj.push((
                        "args".into(),
                        Value::Obj(vec![("value".into(), Value::UInt(e.value))]),
                    ));
                } else {
                    obj.push(("s".into(), Value::Str("t".into())));
                }
                rows.push((e.start_ns, Value::Obj(obj)));
            }
        }

        // Stable sort: per-worker emission order (close-ordered span
        // triples become correctly interleaved B/E pairs — every B
        // carries a strictly smaller or tied-but-earlier ts than its E)
        // survives; cross-worker ties stay grouped.
        rows.sort_by_key(|(ts, _)| *ts);
        let mut trace_events = meta;
        trace_events.extend(rows.into_iter().map(|(_, v)| v));
        Value::Obj(vec![
            ("traceEvents".into(), Value::Arr(trace_events)),
            ("displayTimeUnit".into(), Value::Str("ms".into())),
            ("droppedEvents".into(), Value::UInt(self.dropped())),
        ])
        .to_json()
    }

    /// Export folded-stack lines (`worker0;study;tool/packet 12345`) with
    /// self-time weights in ns, for `flamegraph.pl`-style tooling. Lines
    /// are sorted (BTreeMap order) so output is stable.
    pub fn to_folded(&self) -> String {
        let events = self.collect();
        let mut folded: BTreeMap<String, u64> = BTreeMap::new();
        let mut workers: Vec<u16> = events.iter().map(|e| e.worker).collect();
        workers.sort_unstable();
        workers.dedup();
        for w in workers {
            let spans: Vec<&TraceEvent> =
                events.iter().filter(|e| e.worker == w && e.kind == TraceKind::Span).collect();
            for (path, self_ns) in fold_spans(&spans) {
                let names: Vec<String> = path.iter().map(|id| self.name(*id)).collect();
                let key = format!("worker{w};{}", names.join(";"));
                *folded.entry(key).or_default() += self_ns;
            }
        }
        let mut out = String::new();
        for (k, v) in folded {
            out.push_str(&k);
            out.push(' ');
            out.push_str(&v.to_string());
            out.push('\n');
        }
        out
    }
}

/// Resolve span records into a properly nested (name, start, end)
/// sequence for one worker: sorted by start (longer spans first on
/// ties), children clamped inside their parent so B/E pairs always
/// nest. Triples come out in close order; the exporter's stable
/// sort-by-ts turns that into the interleaved B/E stream the trace
/// format wants (an E tied with a following B sorts first because it
/// was emitted first).
fn nest_spans(spans: &[&TraceEvent]) -> Vec<(u16, u64, u64)> {
    let mut sorted: Vec<(u64, u64, u16)> =
        spans.iter().map(|e| (e.start_ns, e.start_ns.saturating_add(e.dur_ns), e.name)).collect();
    sorted.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
    let mut out = Vec::with_capacity(sorted.len());
    let mut stack: Vec<(u16, u64, u64)> = Vec::new();
    for (start, end, name) in sorted {
        while let Some(top) = stack.last() {
            if top.2 <= start {
                out.push(stack.pop().unwrap());
            } else {
                break;
            }
        }
        // Clamp to the enclosing span so overlap (which scoped guards
        // cannot produce, but raw records could) still nests.
        let end = match stack.last() {
            Some(top) => end.min(top.2),
            None => end,
        };
        stack.push((name, start, end));
    }
    while let Some(top) = stack.pop() {
        out.push(top);
    }
    out
}

/// Compute (stack-path, self-time) pairs for one worker's spans.
fn fold_spans(spans: &[&TraceEvent]) -> Vec<(Vec<u16>, u64)> {
    let mut sorted: Vec<(u64, u64, u16)> =
        spans.iter().map(|e| (e.start_ns, e.start_ns.saturating_add(e.dur_ns), e.name)).collect();
    sorted.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
    struct Open {
        start: u64,
        end: u64,
        child_ns: u64,
        path: Vec<u16>,
    }
    let mut out = Vec::new();
    let mut stack: Vec<Open> = Vec::new();
    let pop = |stack: &mut Vec<Open>, out: &mut Vec<(Vec<u16>, u64)>| {
        let top = stack.pop().expect("pop on empty span stack");
        let dur = top.end.saturating_sub(top.start);
        out.push((top.path.clone(), dur.saturating_sub(top.child_ns)));
        if let Some(parent) = stack.last_mut() {
            parent.child_ns += dur;
        }
    };
    for (start, end, name) in sorted {
        while stack.last().is_some_and(|t| t.end <= start) {
            pop(&mut stack, &mut out);
        }
        let end = stack.last().map_or(end, |t| end.min(t.end));
        let mut path = stack.last().map(|t| t.path.clone()).unwrap_or_default();
        path.push(name);
        stack.push(Open { start, end, child_ns: 0, path });
    }
    while !stack.is_empty() {
        pop(&mut stack, &mut out);
    }
    out
}

/// Live trace span; records one `Span` record into its log on drop.
#[derive(Debug)]
pub struct TraceSpan {
    sink: Option<(TraceLog, u16)>,
    start_ns: u64,
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        if let Some((tl, name)) = self.sink.take() {
            let end = tl.now_ns();
            tl.record(TraceKind::Span, name, self.start_ns, end.saturating_sub(self.start_ns), 0);
        }
    }
}

impl std::fmt::Debug for TraceLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceLog")
            .field("events", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

static GLOBAL: OnceLock<TraceLog> = OnceLock::new();

/// Install the process-global trace log (idempotent; the first capacity
/// wins). `repro --trace` calls this once at startup.
pub fn install(lane_capacity: usize) -> &'static TraceLog {
    GLOBAL.get_or_init(|| TraceLog::new(lane_capacity))
}

/// The installed global log, if any. One `OnceLock` load — the whole
/// disabled cost of a `trace_span!` call site.
pub fn current() -> Option<&'static TraceLog> {
    #[cfg(feature = "enabled")]
    {
        GLOBAL.get()
    }
    #[cfg(not(feature = "enabled"))]
    {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn trace_event_is_copy_and_small() {
        fn assert_copy<T: Copy>() {}
        assert_copy::<TraceEvent>();
        assert!(
            std::mem::size_of::<TraceEvent>() <= 32,
            "TraceEvent grew past 32 bytes: {}",
            std::mem::size_of::<TraceEvent>()
        );
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let tl = TraceLog::new(16);
        let id = tl.intern("x");
        for i in 0..40u64 {
            tl.record(TraceKind::Instant, id, i, 0, 0);
        }
        assert_eq!(tl.len(), 16);
        assert_eq!(tl.dropped(), 24);
        let min_ts = tl.collect().iter().map(|e| e.start_ns).min().unwrap();
        assert_eq!(min_ts, 24, "oldest records were overwritten");
    }

    /// Satellite: exported trace JSON parses via `obs::json::parse`,
    /// B/E pairs balance, and per-track timestamps never decrease.
    #[cfg(feature = "enabled")]
    #[test]
    fn chrome_export_is_balanced_and_ordered() {
        let tl = TraceLog::new(1024);
        tl.set_worker(3);
        let outer = tl.intern("outer");
        let inner = tl.intern("inner");
        let tail = tl.intern("tail");
        // Nested + sibling spans with shared boundaries, plus an instant
        // and a counter sample.
        tl.record(TraceKind::Span, outer, 0, 100, 0);
        tl.record(TraceKind::Span, inner, 10, 40, 0);
        tl.record(TraceKind::Span, tail, 50, 50, 0);
        tl.record(TraceKind::Instant, tl.intern("mark"), 60, 0, 0);
        tl.record(TraceKind::Counter, tl.intern("depth"), 70, 0, 9);

        let text = tl.to_chrome_json();
        let doc = json::parse(&text).expect("chrome export must be valid JSON");
        let events = match doc.get("traceEvents") {
            Some(Value::Arr(xs)) => xs,
            other => panic!("expected traceEvents array, got {other:?}"),
        };
        let mut depth = 0i64;
        let mut last_ts = f64::MIN;
        let mut begins = 0;
        let mut ends = 0;
        for e in events {
            let ph = e.get("ph").and_then(Value::as_str).unwrap();
            if ph == "M" {
                continue;
            }
            let ts = e.get("ts").and_then(Value::as_f64).unwrap();
            assert!(ts >= last_ts, "timestamps decreased: {ts} after {last_ts}");
            last_ts = ts;
            match ph {
                "B" => {
                    depth += 1;
                    begins += 1;
                }
                "E" => {
                    depth -= 1;
                    ends += 1;
                    assert!(depth >= 0, "E without matching B");
                }
                "i" | "C" => {}
                other => panic!("unexpected phase {other}"),
            }
        }
        assert_eq!(depth, 0, "unbalanced B/E pairs");
        assert_eq!(begins, 3);
        assert_eq!(ends, 3);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn folded_stacks_attribute_self_time() {
        let tl = TraceLog::new(1024);
        tl.set_worker(0);
        let outer = tl.intern("outer");
        let inner = tl.intern("inner");
        tl.record(TraceKind::Span, outer, 0, 100, 0);
        tl.record(TraceKind::Span, inner, 20, 30, 0);
        let folded = tl.to_folded();
        let lines: Vec<&str> = folded.lines().collect();
        assert!(lines.contains(&"worker0;outer 70"), "folded: {folded}");
        assert!(lines.contains(&"worker0;outer;inner 30"), "folded: {folded}");
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn span_guard_records_once() {
        let tl = TraceLog::new(64);
        {
            let _g = tl.span("phase");
        }
        assert_eq!(tl.len(), 1);
        let ev = tl.collect()[0];
        assert_eq!(ev.kind, TraceKind::Span);
        assert_eq!(tl.name(ev.name), "phase");
    }
}
