//! Socket client for the `repro serve` daemon.
//!
//! [`submit`] drives one study over the wire and materializes the
//! response frames as the same on-disk layout the one-shot CLI writes:
//! `out/<report>`, `out/metrics/<name>.{json,csv}`, plus an
//! `out/response.json` summary (session id, cache disposition, entries
//! executed, server wall time) for scripted callers — the CI
//! cache-effectiveness check reads exactly that file.

use crate::protocol::{read_frame, write_frame, Request, ServeError};
use masim_core::session::SessionSpec;
use masim_obs::json::Value;
use masim_obs::Progress;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Where the daemon lives, from the client's point of view.
#[derive(Clone, Debug)]
pub enum Target {
    /// A unix-domain socket path.
    Unix(PathBuf),
    /// A TCP address, e.g. `127.0.0.1:7077`.
    Tcp(String),
}

/// A connected stream to the daemon (unix or TCP, same protocol).
pub enum Conn {
    /// Unix-domain transport.
    Unix(std::os::unix::net::UnixStream),
    /// TCP transport.
    Tcp(std::net::TcpStream),
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

/// Connect to the daemon.
pub fn connect(target: &Target) -> std::io::Result<Conn> {
    match target {
        Target::Unix(path) => std::os::unix::net::UnixStream::connect(path).map(Conn::Unix),
        Target::Tcp(addr) => std::net::TcpStream::connect(addr).map(Conn::Tcp),
    }
}

/// What a completed [`submit`] reported.
#[derive(Clone, Debug)]
pub struct SubmitSummary {
    /// Server-assigned session id.
    pub session: String,
    /// `"hit"` or `"miss"` — how the result cache answered.
    pub cache: String,
    /// Entries the server actually executed (0 on a cache hit).
    pub ran: u64,
    /// Server-side wall time for the whole request, nanoseconds.
    pub wall_ns: u64,
    /// Entries in the study.
    pub total: u64,
    /// Report file name the server used (`table2.txt` / `study.csv`).
    pub report_name: String,
}

impl SubmitSummary {
    /// The `response.json` body scripted callers consume.
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("session".into(), Value::Str(self.session.clone())),
            ("cache".into(), Value::Str(self.cache.clone())),
            ("ran".into(), Value::UInt(self.ran)),
            ("wall_ns".into(), Value::UInt(self.wall_ns)),
            ("total".into(), Value::UInt(self.total)),
            ("report_name".into(), Value::Str(self.report_name.clone())),
        ])
    }
}

fn remote(reason: String) -> ServeError {
    ServeError::Remote { kind: "protocol".to_string(), message: reason }
}

fn str_field(v: &Value, field: &str) -> Result<String, ServeError> {
    v.get(field)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| remote(format!("frame missing string '{field}'")))
}

fn u64_field(v: &Value, field: &str) -> Result<u64, ServeError> {
    v.get(field)
        .and_then(Value::as_u64)
        .ok_or_else(|| remote(format!("frame missing u64 '{field}'")))
}

/// Submit `spec` and write the streamed response under `out_dir`
/// (report at the top, sidecars in `metrics/`, summary in
/// `response.json`). `quiet` suppresses the client-side progress bar.
pub fn submit(
    target: &Target,
    spec: SessionSpec,
    out_dir: &Path,
    quiet: bool,
) -> Result<SubmitSummary, ServeError> {
    let mut conn = connect(target)?;
    write_frame(&mut conn, &Request::Submit(spec).to_value())?;

    let metrics_dir = out_dir.join("metrics");
    std::fs::create_dir_all(&metrics_dir)?;

    let mut session = String::new();
    let mut cache = String::new();
    let mut total = 0u64;
    let mut report_name = String::new();
    let mut progress: Option<Progress> = None;
    loop {
        let v = read_frame(&mut conn)?;
        match v.get("frame").and_then(Value::as_str) {
            Some("accepted") => {
                session = str_field(&v, "session")?;
                cache = str_field(&v, "cache")?;
                total = u64_field(&v, "total")?;
                if !quiet {
                    progress = Some(Progress::new("submit", total).with_prefix(&session));
                }
            }
            Some("progress") => {
                if let Some(p) = &progress {
                    p.tick(1);
                }
            }
            Some("sidecar") => {
                let name = str_field(&v, "name")?;
                std::fs::write(metrics_dir.join(format!("{name}.json")), str_field(&v, "json")?)?;
                std::fs::write(metrics_dir.join(format!("{name}.csv")), str_field(&v, "csv")?)?;
            }
            Some("report") => {
                report_name = str_field(&v, "name")?;
                std::fs::write(out_dir.join(&report_name), str_field(&v, "text")?)?;
            }
            Some("done") => {
                if let Some(p) = &progress {
                    p.finish();
                }
                let summary = SubmitSummary {
                    session,
                    cache: str_field(&v, "cache")?,
                    ran: u64_field(&v, "ran")?,
                    wall_ns: u64_field(&v, "wall_ns")?,
                    total,
                    report_name,
                };
                std::fs::write(out_dir.join("response.json"), summary.to_value().to_json())?;
                // Echoed cache state must agree with `accepted`.
                debug_assert_eq!(summary.cache, cache);
                return Ok(summary);
            }
            Some("canceled") => {
                let done = u64_field(&v, "done")?;
                return Err(remote(format!("session {session} canceled after {done}/{total}")));
            }
            Some("error") => {
                return Err(ServeError::Remote {
                    kind: str_field(&v, "kind")?,
                    message: str_field(&v, "message")?,
                });
            }
            other => {
                return Err(remote(format!("unexpected frame {other:?}")));
            }
        }
    }
}

/// One-request helper: send `req`, return the single response frame.
fn roundtrip(target: &Target, req: &Request) -> Result<Value, ServeError> {
    let mut conn = connect(target)?;
    write_frame(&mut conn, &req.to_value())?;
    read_frame(&mut conn)
}

/// Fetch the daemon's `status` frame (sessions, cache, counters).
pub fn status(target: &Target) -> Result<Value, ServeError> {
    roundtrip(target, &Request::Status)
}

/// Cancel a running session by id; returns the server's response frame.
pub fn cancel(target: &Target, session: &str) -> Result<Value, ServeError> {
    roundtrip(target, &Request::Cancel { session: session.to_string() })
}

/// Ask the daemon to exit; returns its acknowledgement frame.
pub fn shutdown(target: &Target) -> Result<Value, ServeError> {
    roundtrip(target, &Request::Shutdown)
}
