//! Rank-to-node task mappings.
//!
//! The paper replays each trace with "the same task-mapping as the
//! original application execution", which for the machines involved is
//! the block (SLURM-default) mapping. Round-robin and random mappings
//! are provided for the mapping-sensitivity ablation.

use crate::error::TopoError;
use crate::machine::Machine;
use masim_trace::{NodeId, Rank};

/// An immutable rank → node assignment.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Mapping {
    node_of: Vec<NodeId>,
}

impl Mapping {
    /// Block mapping: ranks fill node 0, then node 1, … (`ranks_per_node`
    /// consecutive ranks per node).
    pub fn block(ranks: u32, ranks_per_node: u32) -> Mapping {
        assert!(ranks_per_node >= 1);
        let node_of = (0..ranks).map(|r| NodeId(r / ranks_per_node)).collect();
        Mapping { node_of }
    }

    /// Round-robin mapping over `nodes` nodes: rank r → node (r mod nodes).
    pub fn round_robin(ranks: u32, nodes: u32) -> Mapping {
        assert!(nodes >= 1);
        let node_of = (0..ranks).map(|r| NodeId(r % nodes)).collect();
        Mapping { node_of }
    }

    /// Random permutation of the block mapping, deterministic in `seed`.
    ///
    /// Uses an inline splitmix64/Fisher–Yates so this crate stays free of
    /// the `rand` dependency.
    pub fn random(ranks: u32, ranks_per_node: u32, seed: u64) -> Mapping {
        let mut node_of: Vec<NodeId> = Mapping::block(ranks, ranks_per_node).node_of;
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for i in (1..node_of.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            node_of.swap(i, j);
        }
        Mapping { node_of }
    }

    /// Build from an explicit hostmap.
    pub fn from_nodes(node_of: Vec<NodeId>) -> Mapping {
        Mapping { node_of }
    }

    /// Node hosting `rank`.
    #[inline]
    pub fn node_of(&self, rank: Rank) -> NodeId {
        self.node_of[rank.idx()]
    }

    /// Number of ranks mapped.
    pub fn ranks(&self) -> u32 {
        self.node_of.len() as u32
    }

    /// Number of distinct nodes used.
    pub fn nodes_used(&self) -> u32 {
        let mut seen: Vec<bool> = Vec::new();
        for n in &self.node_of {
            if n.idx() >= seen.len() {
                seen.resize(n.idx() + 1, false);
            }
            seen[n.idx()] = true;
        }
        seen.iter().filter(|&&b| b).count() as u32
    }

    /// Check the mapping fits a machine: every node id exists and no node
    /// holds more ranks than it has cores.
    pub fn validate_for(&self, machine: &Machine) -> Result<(), TopoError> {
        let nodes = machine.topology.num_nodes();
        let mut load = vec![0u32; nodes as usize];
        for (r, n) in self.node_of.iter().enumerate() {
            if n.0 >= nodes {
                return Err(TopoError::NonexistentNode { rank: r as u32, node: n.0, nodes });
            }
            load[n.idx()] += 1;
            if load[n.idx()] > machine.cores_per_node {
                return Err(TopoError::Oversubscribed {
                    node: n.0,
                    ranks: load[n.idx()],
                    cores: machine.cores_per_node,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_packs_nodes() {
        let m = Mapping::block(10, 4);
        assert_eq!(m.node_of(Rank(0)), NodeId(0));
        assert_eq!(m.node_of(Rank(3)), NodeId(0));
        assert_eq!(m.node_of(Rank(4)), NodeId(1));
        assert_eq!(m.node_of(Rank(9)), NodeId(2));
        assert_eq!(m.nodes_used(), 3);
    }

    #[test]
    fn round_robin_spreads() {
        let m = Mapping::round_robin(10, 4);
        assert_eq!(m.node_of(Rank(0)), NodeId(0));
        assert_eq!(m.node_of(Rank(5)), NodeId(1));
        assert_eq!(m.nodes_used(), 4);
    }

    #[test]
    fn random_is_permutation_and_deterministic() {
        let a = Mapping::random(64, 4, 7);
        let b = Mapping::random(64, 4, 7);
        assert_eq!(a, b);
        let c = Mapping::random(64, 4, 8);
        assert_ne!(a, c, "different seeds should (almost surely) differ");
        // Same multiset of node assignments as block.
        let mut counts = [0u32; 16];
        for r in 0..64 {
            counts[a.node_of(Rank(r)).idx()] += 1;
        }
        assert!(counts.iter().all(|&c| c == 4));
    }

    #[test]
    fn validate_against_machine() {
        let m = Machine::cielito(); // 64 nodes, 16 cores
        assert!(Mapping::block(1024, 16).validate_for(&m).is_ok());
        assert!(Mapping::block(1025, 16).validate_for(&m).is_err(), "node 64 does not exist");
        assert!(Mapping::block(17, 17).validate_for(&m).is_err(), "oversubscribes cores");
    }
}
