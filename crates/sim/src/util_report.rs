//! Link-utilization reporting: where the bytes went.
//!
//! The simulator's whole advantage over modeling is seeing *which* links
//! carry the traffic; this module turns the per-link byte counters into
//! a digestible report (per-kind totals, the hottest links, and a
//! concentration index) for examples and post-mortems.

use crate::runner::SimConfig;
use masim_topo::{LinkId, LinkKind};
use masim_trace::Rank;

/// Aggregated utilization of one link class.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct KindUsage {
    /// Number of links of this kind that carried any traffic.
    pub active_links: usize,
    /// Total bytes across the class.
    pub bytes: u64,
    /// The busiest single link's bytes.
    pub max_bytes: u64,
}

/// A utilization digest of one simulation.
#[derive(Clone, Debug)]
pub struct UtilReport {
    /// Fabric (switch-to-switch) links.
    pub fabric: KindUsage,
    /// Per-rank injection links.
    pub injection: KindUsage,
    /// Per-rank ejection links.
    pub ejection: KindUsage,
    /// The hottest links overall: (kind, id, bytes), descending.
    pub hottest: Vec<(LinkKind, LinkId, u64)>,
    /// Share of all fabric bytes carried by the busiest fabric link —
    /// the hotspot-concentration index (1/active_links would be perfect
    /// spreading).
    pub fabric_concentration: f64,
}

impl UtilReport {
    /// Build the report from a finished simulation's per-link byte
    /// counts. `cfg` supplies the topology (for link kinds) and the
    /// trace's rank count fixes the virtual-link layout.
    pub fn new(cfg: &SimConfig, ranks: u32, link_bytes: &[u64], top: usize) -> UtilReport {
        let topo_links = cfg.machine.topology.num_links() as usize;
        let mut fabric = KindUsage::default();
        let mut injection = KindUsage::default();
        let mut ejection = KindUsage::default();
        let mut all: Vec<(LinkKind, LinkId, u64)> = Vec::new();
        for (i, &b) in link_bytes.iter().enumerate() {
            if b == 0 {
                continue;
            }
            // Virtual per-rank links follow the topology's table:
            // [topo fabric+inj+ej][rank injections][rank ejections].
            let kind = if i < topo_links {
                cfg.machine.topology.link_kind(LinkId(i as u32))
            } else if i < topo_links + ranks as usize {
                LinkKind::Injection
            } else {
                LinkKind::Ejection
            };
            let slot = match kind {
                LinkKind::Fabric => &mut fabric,
                LinkKind::Injection => &mut injection,
                LinkKind::Ejection => &mut ejection,
            };
            slot.active_links += 1;
            slot.bytes += b;
            slot.max_bytes = slot.max_bytes.max(b);
            all.push((kind, LinkId(i as u32), b));
        }
        all.sort_by_key(|&(_, _, b)| std::cmp::Reverse(b));
        all.truncate(top);
        let fabric_concentration =
            if fabric.bytes > 0 { fabric.max_bytes as f64 / fabric.bytes as f64 } else { 0.0 };
        UtilReport { fabric, injection, ejection, hottest: all, fabric_concentration }
    }

    /// Render as a short text block.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let row = |name: &str, k: &KindUsage| {
            format!(
                "  {name:<10} {:>6} links {:>12.2} MB total {:>10.2} MB max\n",
                k.active_links,
                k.bytes as f64 / 1e6,
                k.max_bytes as f64 / 1e6
            )
        };
        out.push_str("link utilization:\n");
        out.push_str(&row("fabric", &self.fabric));
        out.push_str(&row("injection", &self.injection));
        out.push_str(&row("ejection", &self.ejection));
        let _ = writeln!(
            out,
            "  fabric concentration: {:.1}% of fabric bytes on the hottest link",
            self.fabric_concentration * 100.0
        );
        out
    }
}

/// Identify the rank behind a virtual injection/ejection link, if any.
pub fn virtual_link_rank(cfg: &SimConfig, ranks: u32, link: LinkId) -> Option<(LinkKind, Rank)> {
    let topo_links = cfg.machine.topology.num_links();
    if link.0 < topo_links {
        None
    } else if link.0 < topo_links + ranks {
        Some((LinkKind::Injection, Rank(link.0 - topo_links)))
    } else {
        Some((LinkKind::Ejection, Rank(link.0 - topo_links - ranks)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, ModelKind, SimConfig};
    use masim_topo::Machine;
    use masim_workloads::{generate, App, GenConfig};

    fn run(app: App) -> (SimConfig, u32, crate::runner::SimResult) {
        let machine = Machine::cielito();
        let mut gcfg = GenConfig::test_default(app, 16);
        gcfg.ranks_per_node = 1;
        let trace = generate(&gcfg);
        let cfg = SimConfig::new(machine, ModelKind::PacketFlow { packet_bytes: 8192 }, &trace);
        let r = simulate(&trace, &cfg);
        (cfg, trace.num_ranks(), r)
    }

    #[test]
    fn report_accounts_for_every_byte() {
        let (cfg, ranks, r) = run(App::Cg);
        // Re-simulate to fetch link bytes: SimResult only carries the
        // max; rebuild via a fresh run with the same inputs.
        // (The public API exposes max_link_bytes; the full vector comes
        // from the state, which tests access through this helper.)
        let trace = generate(&{
            let mut g = GenConfig::test_default(App::Cg, 16);
            g.ranks_per_node = 1;
            g
        });
        let bytes = crate::runner::link_bytes_of(&trace, &cfg);
        let report = UtilReport::new(&cfg, ranks, &bytes, 5);
        let sum = report.fabric.bytes + report.injection.bytes + report.ejection.bytes;
        assert_eq!(sum, bytes.iter().sum::<u64>());
        assert!(report.injection.bytes > 0);
        assert!(report.ejection.bytes > 0);
        assert!(report.hottest.len() <= 5);
        assert!(report.fabric_concentration <= 1.0);
        assert!(report.hottest[0].2 >= r.max_link_bytes.min(report.hottest[0].2));
        let txt = report.to_text();
        assert!(txt.contains("fabric concentration"));
    }

    #[test]
    fn virtual_link_identification() {
        let (cfg, ranks, _r) = run(App::Ep);
        let topo_links = cfg.machine.topology.num_links();
        assert_eq!(virtual_link_rank(&cfg, ranks, LinkId(0)), None);
        assert_eq!(
            virtual_link_rank(&cfg, ranks, LinkId(topo_links + 3)),
            Some((LinkKind::Injection, Rank(3)))
        );
        assert_eq!(
            virtual_link_rank(&cfg, ranks, LinkId(topo_links + ranks + 5)),
            Some((LinkKind::Ejection, Rank(5)))
        );
    }
}
