//! Property-style tests for the trace substrate, driven by a seeded
//! deterministic generator (masim-rng) so every run exercises the same
//! randomized cases.

use masim_rng::Rng;
use masim_trace::{
    io, CollKind, Event, EventKind, Rank, RankBuilder, ReqId, Time, Trace, TraceMeta,
};

const CASES: u64 = 48;

fn arb_coll_kind(r: &mut Rng) -> CollKind {
    *r.choose(&CollKind::ALL)
}

fn arb_event(r: &mut Rng, world: u32) -> Event {
    let rank = |r: &mut Rng| Rank(r.gen_range_u64(0, world as u64) as u32);
    let bytes = |r: &mut Rng| r.gen_range_u64(0, 1_000_000);
    let tag = |r: &mut Rng| r.gen_range_u64(0, 8) as u32;
    let req = |r: &mut Rng| ReqId(r.gen_range_u64(0, 64) as u32);
    let dur = |r: &mut Rng| Time::from_ps(r.gen_range_u64(0, 1_000_000));
    match r.gen_range_u64(0, 8) {
        0 => Event::compute(Time::from_ps(r.gen_range_u64(0, 10_000_000))),
        1 => Event::new(EventKind::Send { peer: rank(r), bytes: bytes(r), tag: tag(r) }, dur(r)),
        2 => Event::new(
            EventKind::Isend { peer: rank(r), bytes: bytes(r), tag: tag(r), req: req(r) },
            dur(r),
        ),
        3 => Event::new(EventKind::Recv { peer: rank(r), bytes: bytes(r), tag: tag(r) }, dur(r)),
        4 => Event::new(
            EventKind::Irecv { peer: rank(r), bytes: bytes(r), tag: tag(r), req: req(r) },
            dur(r),
        ),
        5 => Event::new(EventKind::Wait { req: req(r) }, dur(r)),
        6 => {
            let n = r.gen_range_usize(0, 5);
            let reqs = (0..n).map(|_| req(r)).collect();
            Event::new(EventKind::WaitAll { reqs }, dur(r))
        }
        _ => Event::new(
            EventKind::Coll { kind: arb_coll_kind(r), bytes: bytes(r), root: rank(r) },
            dur(r),
        ),
    }
}

fn arb_name(r: &mut Rng) -> String {
    let len = r.gen_range_usize(1, 9);
    (0..len).map(|_| (b'a' + r.gen_range_u64(0, 26) as u8) as char).collect()
}

/// Arbitrary (not necessarily valid) traces: enough to exercise the
/// serializer on every event shape.
fn arb_trace(r: &mut Rng) -> Trace {
    let ranks = r.gen_range_u64(1, 5) as u32;
    let meta = TraceMeta {
        app: arb_name(r),
        machine: arb_name(r),
        ranks,
        ranks_per_node: r.gen_range_u64(1, 4) as u32,
        problem_size: 1,
        seed: r.next_u64(),
    };
    let events = (0..ranks)
        .map(|_| {
            let n = r.gen_range_usize(1, 20);
            (0..n).map(|_| arb_event(r, ranks)).collect()
        })
        .collect();
    Trace { meta, events }
}

/// Binary encode/decode is an exact round trip for every event shape.
#[test]
fn encode_decode_round_trip() {
    let mut r = Rng::seed_from_u64(0x7ace_0001);
    for _ in 0..CASES {
        let t = arb_trace(&mut r);
        let bytes = io::encode(&t);
        let t2 = io::decode(&bytes).expect("decode");
        assert_eq!(t, t2);
    }
}

/// Decoding any proper prefix fails with an error, never panics.
#[test]
fn truncated_decode_is_an_error() {
    let mut r = Rng::seed_from_u64(0x7ace_0002);
    for _ in 0..CASES {
        let t = arb_trace(&mut r);
        let bytes = io::encode(&t);
        let cut = ((bytes.len() as f64) * r.next_f64()) as usize;
        if cut < bytes.len() {
            assert!(io::decode(&bytes[..cut]).is_err());
        }
    }
}

/// Measured wall time never exceeds summed time and never underruns the
/// longest single event.
#[test]
fn time_aggregates_are_consistent() {
    let mut r = Rng::seed_from_u64(0x7ace_0003);
    for _ in 0..CASES {
        let t = arb_trace(&mut r);
        let wall = t.measured_time();
        let summed = t.total_comm_time() + t.total_compute_time();
        assert!(wall <= summed + Time::from_ps(1));
        let longest =
            t.events.iter().flat_map(|es| es.iter()).map(|e| e.dur).max().unwrap_or(Time::ZERO);
        assert!(wall >= longest);
        let frac = t.comm_fraction();
        assert!((0.0..=1.0).contains(&frac));
    }
}

/// Symmetric pairwise exchanges built with `RankBuilder` always validate,
/// and feature extraction matches hand counts.
#[test]
fn builder_pairwise_traces_validate() {
    let mut r = Rng::seed_from_u64(0x7ace_0004);
    for _ in 0..CASES {
        let pairs = r.gen_range_usize(1, 6);
        let bytes = r.gen_range_u64(1, 1_000_000);
        let rounds = r.gen_range_usize(1, 4);
        let ranks = (pairs * 2) as u32;
        let meta = TraceMeta {
            app: "pp".into(),
            machine: "prop".into(),
            ranks,
            ranks_per_node: 2,
            problem_size: 1,
            seed: 0,
        };
        let mut trace = Trace::empty(meta);
        for p in 0..pairs {
            let a = Rank((2 * p) as u32);
            let b = Rank((2 * p + 1) as u32);
            let mut ba = RankBuilder::new(a);
            let mut bb = RankBuilder::new(b);
            for round in 0..rounds {
                let tag = round as u32;
                ba.compute(Time::from_us(3));
                bb.compute(Time::from_us(3));
                let ra = ba.isend(b, bytes, tag, Time::from_ns(100));
                let rb = bb.irecv(a, bytes, tag, Time::from_ns(100));
                ba.wait(ra, Time::from_ns(100));
                bb.wait(rb, Time::from_ns(100));
            }
            trace.events[a.idx()] = ba.finish();
            trace.events[b.idx()] = bb.finish();
        }
        assert_eq!(trace.validate(), Ok(()));
        let f = masim_trace::Features::extract(&trace);
        assert_eq!(f.no_is as usize, pairs * rounds);
        assert_eq!(f.no_ir as usize, pairs * rounds);
        assert_eq!(f.tb_p2p as u64, (pairs * rounds) as u64 * bytes);
        assert!((f.po_cp + f.po_c - 100.0).abs() < 1e-6);
    }
}

/// Bandwidth transfer times are monotone in bytes and inversely monotone
/// in rate.
#[test]
fn transfer_time_monotone() {
    let mut r = Rng::seed_from_u64(0x7ace_0005);
    for _ in 0..CASES {
        let gbps = r.gen_range_f64(1.0, 100.0);
        let a = r.gen_range_u64(0, 10_000_000);
        let b = r.gen_range_u64(0, 10_000_000);
        let bw = masim_trace::Bandwidth::from_gbps(gbps);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(bw.transfer_time(lo) <= bw.transfer_time(hi));
        let faster = bw.scale(2.0);
        assert!(faster.transfer_time(hi) <= bw.transfer_time(hi));
    }
}
