//! Seeded fault injection for robustness testing.
//!
//! The study treats tool failure as data, so the failure paths need a
//! way to be *exercised on purpose*. This module corrupts healthy
//! inputs in the ways real trace pipelines break — truncated files,
//! flipped bits, dropped or spurious receives, dangling request ids,
//! pathological compute durations — all driven by a [`Rng`] seed so
//! every corruption is reproducible from `(seed, fault)` alone.
//!
//! The containment contract the failure-injection suite asserts over
//! these: every corrupted input must land in a **typed error**
//! (`DecodeError`, `TraceError`, `ReplayError`, `SimError`, or a
//! contained `ToolFailure::Panicked`) — never an uncontained panic,
//! never a silently wrong answer.

use masim_rng::Rng;
use masim_trace::{Event, EventKind, Rank, ReqId, Time, Trace};

/// Injected operations take no traced time of their own.
const ZERO: Time = Time::ZERO;

/// Byte-level corruptions, applied to an encoded trace buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ByteFault {
    /// Cut the buffer short at a random offset (a partial write or a
    /// torn download).
    Truncate,
    /// Flip one random bit (storage or transport corruption).
    FlipBit,
}

/// All byte-level faults, for sweep loops.
pub const BYTE_FAULTS: [ByteFault; 2] = [ByteFault::Truncate, ByteFault::FlipBit];

/// Structural corruptions, applied to a decoded trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceFault {
    /// Remove one receive: its sender now sends into the void.
    DropRecv,
    /// Append a blocking receive no rank ever sends to.
    UnmatchedRecv,
    /// Turn two ranks' first interaction into mutually blocking
    /// receives (a classic messaging deadlock).
    RecvRecvDeadlock,
    /// Blow one compute duration up to near the picosecond clock's
    /// ceiling, so any simulator that adds to its clock overflows.
    HugeCompute,
    /// Point one `Wait` at a request id that was never issued.
    WildWaitRequest,
}

/// All trace-level faults, for sweep loops.
pub const TRACE_FAULTS: [TraceFault; 5] = [
    TraceFault::DropRecv,
    TraceFault::UnmatchedRecv,
    TraceFault::RecvRecvDeadlock,
    TraceFault::HugeCompute,
    TraceFault::WildWaitRequest,
];

/// A tag far outside the generators' range, so injected operations
/// never accidentally match legitimate traffic.
const CHAOS_TAG: u32 = 0xC4A0;

/// A request id no generator issues.
const CHAOS_REQ: ReqId = ReqId(0xDEAD);

/// Apply a byte-level fault. `Truncate` returns a strict prefix (the
/// empty buffer is allowed); `FlipBit` flips exactly one bit and
/// preserves length. A buffer too small to corrupt is returned as-is.
pub fn corrupt_bytes(bytes: &[u8], fault: ByteFault, rng: &mut Rng) -> Vec<u8> {
    match fault {
        ByteFault::Truncate => {
            if bytes.is_empty() {
                return Vec::new();
            }
            let cut = rng.gen_range_usize(0, bytes.len());
            bytes[..cut].to_vec()
        }
        ByteFault::FlipBit => {
            let mut out = bytes.to_vec();
            if out.is_empty() {
                return out;
            }
            let bit = rng.gen_range_usize(0, out.len() * 8);
            out[bit / 8] ^= 1 << (bit % 8);
            out
        }
    }
}

/// Apply a structural fault to a (healthy) trace. The returned trace is
/// malformed on purpose; feed it to `validate`/`try_replay`/the
/// simulators and assert the error is typed. Traces without a usable
/// injection point for the requested fault get the closest available
/// corruption rather than none (e.g. `DropRecv` on a collective-only
/// trace falls back to `UnmatchedRecv`).
pub fn corrupt_trace(trace: &Trace, fault: TraceFault, rng: &mut Rng) -> Trace {
    let mut t = trace.clone();
    match fault {
        TraceFault::DropRecv => {
            let recvs: Vec<(usize, usize)> =
                positions(&t, |k| matches!(k, EventKind::Recv { .. } | EventKind::Irecv { .. }));
            match pick(&recvs, rng) {
                Some((r, i)) => {
                    t.events[r].remove(i);
                }
                None => return corrupt_trace(trace, TraceFault::UnmatchedRecv, rng),
            }
        }
        TraceFault::UnmatchedRecv => {
            let n = t.events.len();
            let r = rng.gen_range_usize(0, n.max(1));
            let peer = Rank(((r + 1) % n.max(1)) as u32);
            t.events[r].push(Event::new(EventKind::Recv { peer, bytes: 64, tag: CHAOS_TAG }, ZERO));
        }
        TraceFault::RecvRecvDeadlock => {
            if t.events.len() < 2 {
                return corrupt_trace(trace, TraceFault::UnmatchedRecv, rng);
            }
            // Both ranks block on the other's (never-coming) message
            // before doing anything else.
            for (r, peer) in [(0usize, Rank(1)), (1usize, Rank(0))] {
                t.events[r].insert(
                    0,
                    Event::new(EventKind::Recv { peer, bytes: 64, tag: CHAOS_TAG }, ZERO),
                );
            }
        }
        TraceFault::HugeCompute => {
            let computes: Vec<(usize, usize)> = positions(&t, EventKind::is_compute);
            match pick(&computes, rng) {
                Some((r, i)) => t.events[r][i].dur = Time::from_ps(u64::MAX - 1_000),
                None => {
                    let r = rng.gen_range_usize(0, t.events.len().max(1));
                    t.events[r]
                        .insert(0, Event::new(EventKind::Compute, Time::from_ps(u64::MAX - 1_000)));
                }
            }
        }
        TraceFault::WildWaitRequest => {
            let waits: Vec<(usize, usize)> = positions(&t, |k| matches!(k, EventKind::Wait { .. }));
            match pick(&waits, rng) {
                Some((r, i)) => t.events[r][i].kind = EventKind::Wait { req: CHAOS_REQ },
                None => {
                    let r = rng.gen_range_usize(0, t.events.len().max(1));
                    t.events[r].push(Event::new(EventKind::Wait { req: CHAOS_REQ }, ZERO));
                }
            }
        }
    }
    t
}

/// All `(rank, index)` positions whose event kind satisfies `pred`.
fn positions(t: &Trace, pred: impl Fn(&EventKind) -> bool) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (r, stream) in t.events.iter().enumerate() {
        for (i, ev) in stream.iter().enumerate() {
            if pred(&ev.kind) {
                out.push((r, i));
            }
        }
    }
    out
}

fn pick(positions: &[(usize, usize)], rng: &mut Rng) -> Option<(usize, usize)> {
    if positions.is_empty() {
        None
    } else {
        Some(positions[rng.gen_range_usize(0, positions.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, App, GenConfig};
    use masim_trace::io;

    fn healthy() -> Trace {
        generate(&GenConfig::test_default(App::Cg, 8))
    }

    #[test]
    fn corruptions_are_deterministic_per_seed() {
        let t = healthy();
        let bytes = io::encode(&t);
        for fault in BYTE_FAULTS {
            let a = corrupt_bytes(&bytes, fault, &mut Rng::seed_from_u64(11));
            let b = corrupt_bytes(&bytes, fault, &mut Rng::seed_from_u64(11));
            assert_eq!(a, b, "{fault:?} must be reproducible");
        }
        for fault in TRACE_FAULTS {
            let a = corrupt_trace(&t, fault, &mut Rng::seed_from_u64(11));
            let b = corrupt_trace(&t, fault, &mut Rng::seed_from_u64(11));
            assert_eq!(a, b, "{fault:?} must be reproducible");
        }
    }

    #[test]
    fn byte_faults_actually_corrupt() {
        let t = healthy();
        let bytes = io::encode(&t);
        let mut rng = Rng::seed_from_u64(3);
        let cut = corrupt_bytes(&bytes, ByteFault::Truncate, &mut rng);
        assert!(cut.len() < bytes.len());
        let flipped = corrupt_bytes(&bytes, ByteFault::FlipBit, &mut rng);
        assert_eq!(flipped.len(), bytes.len());
        assert_ne!(flipped, bytes);
        assert_eq!(flipped.iter().zip(&bytes).filter(|(a, b)| a != b).count(), 1);
    }

    #[test]
    fn every_trace_fault_perturbs_the_trace() {
        let t = healthy();
        for fault in TRACE_FAULTS {
            let bad = corrupt_trace(&t, fault, &mut Rng::seed_from_u64(5));
            assert_ne!(bad, t, "{fault:?} left the trace untouched");
            assert_eq!(bad.events.len(), t.events.len(), "rank count is preserved");
        }
    }

    #[test]
    fn fallbacks_cover_traces_without_injection_points() {
        // EP is compute/collective heavy at tiny scale; strip its p2p
        // events so DropRecv/WildWaitRequest must take their fallbacks.
        let mut t = generate(&GenConfig::test_default(App::Ep, 4));
        for stream in &mut t.events {
            stream.retain(|e| !e.kind.is_p2p());
        }
        for fault in [TraceFault::DropRecv, TraceFault::WildWaitRequest] {
            let bad = corrupt_trace(&t, fault, &mut Rng::seed_from_u64(9));
            assert_ne!(bad, t, "{fault:?} fallback produced no corruption");
        }
    }
}
