//! NPB LU: pipelined wavefront solver.
//!
//! LU factorizes on a 2-D process grid; the SSOR sweeps propagate a
//! dependence wave from the north-west corner using many *small blocking
//! sends and receives*. The pattern is latency-dominated — the opposite
//! end of the spectrum from FT's bandwidth-bound transposes.

use crate::apps::{grid_side, size_mult, stamp_contention};
use crate::config::GenConfig;
use crate::synth::TraceSynth;
use masim_trace::{CollKind, Rank, Trace};

/// Number of pencil blocks per sweep (pipeline depth).
const BLOCKS_PER_SWEEP: u32 = 4;

/// Generate an LU trace.
///
/// Per iteration: a lower-triangular sweep (receive from north and west,
/// compute, send to south and east) followed by the mirrored
/// upper-triangular sweep, then a residual `Allreduce` every five
/// iterations. Each sweep is pipelined over [`BLOCKS_PER_SWEEP`] blocks
/// of small messages.
pub fn lu(cfg: &GenConfig) -> Trace {
    let side = grid_side(cfg.ranks);
    assert_eq!(side * side, cfg.ranks, "LU needs a square rank count");
    let id = |x: u32, y: u32| Rank(x + y * side);
    // Pencil faces are thin: a few KB regardless of class.
    let bytes = 1024 * size_mult(cfg.size).min(4);
    let mut s = TraceSynth::new(cfg.clone(), stamp_contention(cfg.app));
    s.coll_all(CollKind::Bcast, 256, Rank(0));

    for it in 0..cfg.iters {
        // Lower sweep: wave from (0,0) to (side-1, side-1).
        s.compute_round();
        for block in 0..BLOCKS_PER_SWEEP {
            let tag = it * 100 + block;
            for y in 0..side {
                for x in 0..side {
                    let me = id(x, y);
                    if x > 0 {
                        s.recv(me, id(x - 1, y), bytes, tag);
                    }
                    if y > 0 {
                        s.recv(me, id(x, y - 1), bytes, tag);
                    }
                    if x + 1 < side {
                        s.send(me, id(x + 1, y), bytes, tag);
                    }
                    if y + 1 < side {
                        s.send(me, id(x, y + 1), bytes, tag);
                    }
                }
            }
        }
        // Upper sweep: wave from (side-1, side-1) back to (0,0).
        s.compute_round();
        for block in 0..BLOCKS_PER_SWEEP {
            let tag = it * 100 + 50 + block;
            for y in (0..side).rev() {
                for x in (0..side).rev() {
                    let me = id(x, y);
                    if x + 1 < side {
                        s.recv(me, id(x + 1, y), bytes, tag);
                    }
                    if y + 1 < side {
                        s.recv(me, id(x, y + 1), bytes, tag);
                    }
                    if x > 0 {
                        s.send(me, id(x - 1, y), bytes, tag);
                    }
                    if y > 0 {
                        s.send(me, id(x, y - 1), bytes, tag);
                    }
                }
            }
        }
        if it % 5 == 4 {
            s.coll_all(CollKind::Allreduce, 40, Rank(0));
        }
    }
    s.coll_all(CollKind::Allreduce, 40, Rank(0));
    s.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::App;
    use masim_trace::{EventKind, Features};

    #[test]
    fn lu_valid_and_blocking() {
        let cfg = GenConfig::test_default(App::Lu, 16);
        let t = lu(&cfg);
        assert_eq!(t.validate(), Ok(()));
        let f = Features::extract(&t);
        // LU is all blocking point-to-point: no nonblocking issues.
        assert_eq!(f.no_is, 0.0);
        assert_eq!(f.no_ir, 0.0);
        assert!(f.no_s > 0.0 && f.no_r > 0.0);
        // Synchronous share of p2p time is 100%.
        assert!((f.tsyn - f.tp2p).abs() < 1e-12);
    }

    #[test]
    fn lu_messages_are_small() {
        let cfg = GenConfig::test_default(App::Lu, 16);
        let t = lu(&cfg);
        for e in t.events.iter().flatten() {
            if let EventKind::Send { bytes, .. } = e.kind {
                assert!(bytes <= 8 * 1024, "LU message unexpectedly large: {bytes}");
            }
        }
    }

    #[test]
    fn lu_corner_ranks_have_fewer_messages() {
        let cfg = GenConfig::test_default(App::Lu, 16);
        let t = lu(&cfg);
        let msgs = |r: usize| t.events[r].iter().filter(|e| e.kind.is_blocking_p2p()).count();
        // Corner (0,0) sends 2/receives 0 in the lower sweep; interior
        // rank 5 = (1,1) does 4 each way.
        assert!(msgs(0) < msgs(5));
    }

    #[test]
    fn lu_send_recv_counts_balance() {
        let cfg = GenConfig::test_default(App::Lu, 9);
        let t = lu(&cfg);
        let f = Features::extract(&t);
        assert_eq!(f.no_s, f.no_r, "every send has a matching recv");
    }
}
