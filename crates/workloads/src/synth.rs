//! `TraceSynth`: the shared engine behind all application generators.
//!
//! A generator describes *what* the application communicates (patterns,
//! message sizes, collectives) and where its compute rounds sit; the
//! synthesizer handles everything else:
//!
//! * stamping measured durations via [`StampModel`];
//! * request-id bookkeeping for nonblocking operations;
//! * **calibration** — compute gaps are emitted as weighted placeholders
//!   and sized at [`TraceSynth::finish`] so the trace's overall
//!   communication fraction lands exactly on `cfg.comm_fraction` (this
//!   is how the corpus reproduces Table Ib);
//! * **skew waits** — per-round compute imbalance surfaces as recorded
//!   wait time on the first blocking call after each gap, exactly as a
//!   real DUMPI trace records it.

use crate::config::GenConfig;
use crate::cost::StampModel;
use masim_rng::Rng;
use masim_trace::{CollKind, Event, EventKind, Rank, ReqId, Time, Trace, TraceMeta};

/// One compute round: per-rank gap weights plus the events that absorb
/// the round's skew as recorded wait time.
#[derive(Default, Debug)]
struct Round {
    /// (rank, slot event index, weight).
    slots: Vec<(u32, usize, f64)>,
    /// (rank, absorber event index).
    absorbers: Vec<(u32, usize)>,
}

/// The trace synthesizer. See module docs.
pub struct TraceSynth {
    cfg: GenConfig,
    stamp: StampModel,
    streams: Vec<Vec<Event>>,
    next_req: Vec<u32>,
    open_reqs: Vec<Vec<(u32, u64)>>, // (req id, bytes) still outstanding
    rng: Rng,
    rounds: Vec<Round>,
    awaiting_absorber: Vec<bool>,
}

impl TraceSynth {
    /// Start synthesizing a trace for `cfg`, stamping measured times with
    /// the given original-run `contention` factor (≥ 1).
    pub fn new(cfg: GenConfig, contention: f64) -> TraceSynth {
        cfg.check();
        let n = cfg.ranks as usize;
        let stamp = StampModel::new(cfg.gbps, cfg.latency, contention);
        let rng = Rng::seed_from_u64(cfg.seed ^ 0xA5A5_5A5A_DEAD_BEEF);
        TraceSynth {
            cfg,
            stamp,
            streams: vec![Vec::new(); n],
            next_req: vec![0; n],
            open_reqs: vec![Vec::new(); n],
            rng,
            rounds: Vec::new(),
            awaiting_absorber: vec![false; n],
        }
    }

    /// World size.
    pub fn ranks(&self) -> u32 {
        self.cfg.ranks
    }

    /// The generator's RNG (deterministic in `cfg.seed`).
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.rng
    }

    /// The stamping model, for generators that need custom durations.
    pub fn stamp(&self) -> &StampModel {
        &self.stamp
    }

    // ----- compute rounds -------------------------------------------------

    /// Open a new compute round. Subsequent [`TraceSynth::compute`] calls
    /// belong to it until the next `begin_round`.
    pub fn begin_round(&mut self) {
        self.rounds.push(Round::default());
    }

    /// Add a weighted compute gap for `rank` in the current round.
    /// The actual duration is assigned at `finish` (calibration).
    pub fn compute(&mut self, rank: Rank, weight: f64) {
        assert!(weight >= 0.0 && weight.is_finite());
        let round = self.rounds.last_mut().expect("compute() before begin_round()");
        let idx = self.streams[rank.idx()].len();
        self.streams[rank.idx()].push(Event::compute(Time::ZERO));
        round.slots.push((rank.0, idx, weight));
        self.awaiting_absorber[rank.idx()] = true;
    }

    /// Open a round and give every rank a gap of weight
    /// `1 + imbalance·U(0,1)` — the standard imbalanced-iteration shape.
    pub fn compute_round(&mut self) {
        self.begin_round();
        let imb = self.cfg.imbalance;
        for r in 0..self.cfg.ranks {
            let jitter: f64 = self.rng.next_f64();
            self.compute(Rank(r), 1.0 + imb * jitter);
        }
    }

    /// Like [`TraceSynth::compute_round`] but with explicit per-rank
    /// weights (for structurally imbalanced apps such as coarse
    /// multigrid levels).
    pub fn compute_round_weighted(&mut self, weights: &[f64]) {
        assert_eq!(weights.len(), self.cfg.ranks as usize);
        self.begin_round();
        for (r, &w) in weights.iter().enumerate() {
            self.compute(Rank(r as u32), w);
        }
    }

    fn register_absorber(&mut self, rank: Rank, idx: usize) {
        if self.awaiting_absorber[rank.idx()] {
            self.awaiting_absorber[rank.idx()] = false;
            if let Some(round) = self.rounds.last_mut() {
                round.absorbers.push((rank.0, idx));
            }
        }
    }

    // ----- point-to-point -------------------------------------------------

    /// Blocking send.
    pub fn send(&mut self, rank: Rank, peer: Rank, bytes: u64, tag: u32) {
        let dur = self.stamp.p2p(bytes);
        let idx = self.streams[rank.idx()].len();
        self.streams[rank.idx()].push(Event::new(EventKind::Send { peer, bytes, tag }, dur));
        self.register_absorber(rank, idx);
    }

    /// Blocking receive (absorbs round skew as recorded wait).
    pub fn recv(&mut self, rank: Rank, peer: Rank, bytes: u64, tag: u32) {
        let dur = self.stamp.p2p(bytes);
        let idx = self.streams[rank.idx()].len();
        self.streams[rank.idx()].push(Event::new(EventKind::Recv { peer, bytes, tag }, dur));
        self.register_absorber(rank, idx);
    }

    /// Nonblocking send.
    pub fn isend(&mut self, rank: Rank, peer: Rank, bytes: u64, tag: u32) -> ReqId {
        let req = ReqId(self.next_req[rank.idx()]);
        self.next_req[rank.idx()] += 1;
        self.open_reqs[rank.idx()].push((req.0, bytes));
        let dur = self.stamp.issue();
        self.streams[rank.idx()].push(Event::new(EventKind::Isend { peer, bytes, tag, req }, dur));
        req
    }

    /// Nonblocking receive.
    pub fn irecv(&mut self, rank: Rank, peer: Rank, bytes: u64, tag: u32) -> ReqId {
        let req = ReqId(self.next_req[rank.idx()]);
        self.next_req[rank.idx()] += 1;
        self.open_reqs[rank.idx()].push((req.0, bytes));
        let dur = self.stamp.issue();
        self.streams[rank.idx()].push(Event::new(EventKind::Irecv { peer, bytes, tag, req }, dur));
        req
    }

    /// Wait on one request.
    pub fn wait(&mut self, rank: Rank, req: ReqId) {
        let pos = self.open_reqs[rank.idx()]
            .iter()
            .position(|&(r, _)| r == req.0)
            .expect("wait on unknown request");
        let (_, bytes) = self.open_reqs[rank.idx()].remove(pos);
        let dur = self.stamp.wait(bytes);
        let idx = self.streams[rank.idx()].len();
        self.streams[rank.idx()].push(Event::new(EventKind::Wait { req }, dur));
        self.register_absorber(rank, idx);
    }

    /// Wait on all outstanding requests of `rank`.
    pub fn wait_all(&mut self, rank: Rank) {
        if self.open_reqs[rank.idx()].is_empty() {
            return;
        }
        let reqs: Vec<ReqId> = self.open_reqs[rank.idx()].iter().map(|&(r, _)| ReqId(r)).collect();
        let max_bytes = self.open_reqs[rank.idx()].iter().map(|&(_, b)| b).max().unwrap_or(0);
        self.open_reqs[rank.idx()].clear();
        let dur = self.stamp.wait(max_bytes);
        let idx = self.streams[rank.idx()].len();
        self.streams[rank.idx()].push(Event::new(EventKind::WaitAll { reqs }, dur));
        self.register_absorber(rank, idx);
    }

    /// Symmetric nonblocking exchange over undirected weighted `edges`:
    /// every endpoint posts its receives, then its sends, then waits on
    /// everything. Edges must be unique per unordered pair.
    pub fn symmetric_exchange(&mut self, edges: &[(u32, u32, u64)], tag: u32) {
        // Receives first on every rank (in edge order) …
        for &(a, b, bytes) in edges {
            debug_assert_ne!(a, b, "self-edge in exchange");
            self.irecv(Rank(a), Rank(b), bytes, tag);
            self.irecv(Rank(b), Rank(a), bytes, tag);
        }
        // … then the matching sends …
        for &(a, b, bytes) in edges {
            self.isend(Rank(a), Rank(b), bytes, tag);
            self.isend(Rank(b), Rank(a), bytes, tag);
        }
        // … then every participating rank waits.
        let mut participants: Vec<u32> = edges.iter().flat_map(|&(a, b, _)| [a, b]).collect();
        participants.sort_unstable();
        participants.dedup();
        for r in participants {
            self.wait_all(Rank(r));
        }
    }

    // ----- collectives ----------------------------------------------------

    /// A collective on one rank (generators must emit a consistent
    /// sequence across ranks; prefer [`TraceSynth::coll_all`]).
    pub fn coll(&mut self, rank: Rank, kind: CollKind, bytes: u64, root: Rank) {
        let dur = self.stamp.collective(kind, bytes, self.cfg.ranks);
        let idx = self.streams[rank.idx()].len();
        self.streams[rank.idx()].push(Event::new(EventKind::Coll { kind, bytes, root }, dur));
        self.register_absorber(rank, idx);
    }

    /// The same collective on every rank (uniform payload).
    pub fn coll_all(&mut self, kind: CollKind, bytes: u64, root: Rank) {
        for r in 0..self.cfg.ranks {
            self.coll(Rank(r), kind, bytes, root);
        }
    }

    /// An `Alltoallv` with per-rank total send volumes.
    pub fn alltoallv(&mut self, totals: &[u64]) {
        assert_eq!(totals.len(), self.cfg.ranks as usize);
        for (r, &t) in totals.iter().enumerate() {
            self.coll(Rank(r as u32), CollKind::Alltoallv, t, Rank(0));
        }
    }

    /// A barrier on every rank.
    pub fn barrier_all(&mut self) {
        self.coll_all(CollKind::Barrier, 0, Rank(0));
    }

    // ----- finish ---------------------------------------------------------

    /// Calibrate compute gaps and skew waits, then build the trace.
    ///
    /// Solves for the per-weight-unit gap duration `u` such that the
    /// final communication fraction equals `cfg.comm_fraction` exactly,
    /// accounting for the wait time the calibrated skew will add:
    ///
    /// ```text
    /// (C + u·κ·D) / (C + u·κ·D + u·W) = f
    /// ```
    ///
    /// where `C` is stamped comm time, `W` total gap weight, `D` the
    /// total skew deficit reaching an absorber, and `κ ≤ 1` a damping
    /// factor chosen to keep the solution positive when `f` is very low
    /// but imbalance very high.
    pub fn finish(mut self) -> Trace {
        for (r, open) in self.open_reqs.iter().enumerate() {
            assert!(open.is_empty(), "rank {r} finished with {} open requests", open.len());
        }

        let comm_ps: u128 = self
            .streams
            .iter()
            .flat_map(|es| es.iter())
            .filter(|e| !e.kind.is_compute())
            .map(|e| e.dur.as_ps() as u128)
            .sum();
        let c = comm_ps as f64;

        let w: f64 = self.rounds.iter().flat_map(|r| r.slots.iter()).map(|&(_, _, w)| w).sum();

        // Per-round skew deficits that actually reach an absorber.
        let mut deficits: Vec<(usize, usize, f64)> = Vec::new(); // (rank, ev idx, deficit weight)
        for round in &self.rounds {
            if round.slots.is_empty() {
                continue;
            }
            let maxw = round.slots.iter().map(|&(_, _, w)| w).fold(0.0, f64::max);
            for &(rank, _slot_idx, wgt) in &round.slots {
                let deficit = maxw - wgt;
                if deficit <= 0.0 {
                    continue;
                }
                if let Some(&(_, abs_idx)) = round.absorbers.iter().find(|&&(ar, _)| ar == rank) {
                    deficits.push((rank as usize, abs_idx, deficit));
                }
            }
        }
        let d: f64 = deficits.iter().map(|&(_, _, x)| x).sum();

        let f = self.cfg.comm_fraction;
        let mut kappa = 1.0;
        let denom = |k: f64| f * w - (1.0 - f) * k * d;
        if w > 0.0 && denom(kappa) <= 0.0 {
            // Damp waits so at most half of the comm budget is skew wait.
            kappa = 0.5 * f * w / ((1.0 - f) * d);
        }
        let unit = if w > 0.0 && c > 0.0 { c * (1.0 - f) / denom(kappa) } else { 0.0 };
        assert!(unit >= 0.0 && unit.is_finite(), "calibration failed: unit={unit}");

        // Patch compute slots.
        for round in &self.rounds {
            for &(rank, idx, wgt) in &round.slots {
                self.streams[rank as usize][idx].dur = Time::from_ps((unit * wgt).round() as u64);
            }
        }
        // Patch skew waits.
        for (rank, idx, deficit) in deficits {
            let extra = Time::from_ps((unit * kappa * deficit).round() as u64);
            let dur = &mut self.streams[rank][idx].dur;
            *dur += extra;
        }

        let meta = TraceMeta {
            app: self.cfg.app.name().to_string(),
            machine: self.cfg.machine.clone(),
            ranks: self.cfg.ranks,
            ranks_per_node: self.cfg.ranks_per_node,
            problem_size: self.cfg.size,
            seed: self.cfg.seed,
        };
        let trace = Trace { meta, events: self.streams };
        debug_assert_eq!(trace.validate(), Ok(()), "generator produced an invalid trace");
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::App;

    fn cfg(f: f64, imb: f64) -> GenConfig {
        GenConfig { comm_fraction: f, imbalance: imb, ..GenConfig::test_default(App::Ep, 8) }
    }

    #[test]
    fn calibration_hits_target_fraction_balanced() {
        for &f in &[0.05, 0.2, 0.5, 0.8] {
            let mut s = TraceSynth::new(cfg(f, 0.0), 1.0);
            for _ in 0..4 {
                s.compute_round();
                s.coll_all(CollKind::Allreduce, 4096, Rank(0));
            }
            let t = s.finish();
            assert_eq!(t.validate(), Ok(()));
            let got = t.comm_fraction();
            assert!((got - f).abs() < 1e-6, "target {f}, got {got}");
        }
    }

    #[test]
    fn calibration_hits_target_with_imbalance() {
        for &f in &[0.1, 0.4] {
            let mut s = TraceSynth::new(cfg(f, 0.5), 1.0);
            for _ in 0..5 {
                s.compute_round();
                s.coll_all(CollKind::Allreduce, 8192, Rank(0));
            }
            let t = s.finish();
            let got = t.comm_fraction();
            assert!((got - f).abs() < 1e-6, "target {f}, got {got}");
        }
    }

    #[test]
    fn skew_waits_land_on_absorbers() {
        let mut s = TraceSynth::new(cfg(0.3, 0.0), 1.0);
        s.begin_round();
        s.compute(Rank(0), 2.0); // slow rank
        for r in 1..8 {
            s.compute(Rank(r), 1.0);
        }
        s.coll_all(CollKind::Barrier, 0, Rank(0));
        let t = s.finish();
        // Every rank but 0 waited; their barrier durations exceed rank 0's.
        let barrier_dur = |r: usize| t.events[r].last().unwrap().dur;
        for r in 1..8 {
            assert!(barrier_dur(r) > barrier_dur(0), "rank {r} should have waited");
        }
    }

    #[test]
    fn symmetric_exchange_produces_valid_trace() {
        let mut s = TraceSynth::new(cfg(0.5, 0.1), 1.2);
        s.compute_round();
        s.symmetric_exchange(&[(0, 1, 1024), (2, 3, 2048), (4, 5, 512), (6, 7, 4096)], 9);
        let t = s.finish();
        assert_eq!(t.validate(), Ok(()));
        // 2 irecv + 2 isend per edge plus one waitall per participant.
        let n_events: usize = t.num_events();
        assert_eq!(n_events, 8 /*compute*/ + 4 * 4 + 8);
    }

    #[test]
    fn extreme_imbalance_low_fraction_still_calibrates() {
        let mut s = TraceSynth::new(cfg(0.02, 1.0), 1.0);
        for _ in 0..3 {
            s.compute_round();
            s.barrier_all();
        }
        let t = s.finish();
        let got = t.comm_fraction();
        assert!((got - 0.02).abs() < 1e-6, "got {got}");
    }

    #[test]
    fn deterministic_in_seed() {
        let make = |seed| {
            let mut c = cfg(0.3, 0.4);
            c.seed = seed;
            let mut s = TraceSynth::new(c, 1.0);
            s.compute_round();
            s.coll_all(CollKind::Allreduce, 64, Rank(0));
            s.finish()
        };
        assert_eq!(make(7), make(7));
        assert_ne!(make(7), make(8));
    }

    #[test]
    #[should_panic(expected = "open requests")]
    fn finish_rejects_open_requests() {
        let mut s = TraceSynth::new(cfg(0.3, 0.0), 1.0);
        s.begin_round();
        s.compute(Rank(0), 1.0);
        let _ = s.isend(Rank(0), Rank(1), 8, 0);
        let _ = s.finish();
    }
}
