//! Classification metrics and the paper's trimmed-mean aggregation.

/// Confusion-matrix counts for a binary classifier. "Positive" is the
/// paper's "requires simulation" label.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Confusion {
    /// Predicted positive, actually positive.
    pub tp: usize,
    /// Predicted positive, actually negative.
    pub fp: usize,
    /// Predicted negative, actually negative.
    pub tn: usize,
    /// Predicted negative, actually positive.
    pub fn_: usize,
}

impl Confusion {
    /// Tally predictions against labels.
    pub fn tally(pred: &[bool], actual: &[bool]) -> Confusion {
        assert_eq!(pred.len(), actual.len());
        let mut c = Confusion::default();
        for (&p, &a) in pred.iter().zip(actual) {
            match (p, a) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        c
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Misclassification rate: wrong / total.
    pub fn misclassification_rate(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.fp + self.fn_) as f64 / self.total() as f64
    }

    /// False-negative rate: FN / (FN + TP) — the paper's definition.
    pub fn fn_rate(&self) -> f64 {
        let d = self.fn_ + self.tp;
        if d == 0 {
            0.0
        } else {
            self.fn_ as f64 / d as f64
        }
    }

    /// False-positive rate: FP / (FP + TN) — the paper's definition.
    pub fn fp_rate(&self) -> f64 {
        let d = self.fp + self.tn;
        if d == 0 {
            0.0
        } else {
            self.fp as f64 / d as f64
        }
    }

    /// Accuracy (1 − misclassification rate).
    pub fn accuracy(&self) -> f64 {
        1.0 - self.misclassification_rate()
    }
}

/// Trimmed mean discarding the top and bottom `trim` fraction of the
/// sorted values (the paper trims 2 % on each side of its 100 test
/// runs). NaNs are rejected.
pub fn trimmed_mean(values: &[f64], trim: f64) -> f64 {
    assert!((0.0..0.5).contains(&trim), "trim fraction must be in [0, 0.5)");
    assert!(!values.is_empty(), "trimmed mean of nothing");
    assert!(values.iter().all(|v| v.is_finite()), "non-finite value");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let cut = ((values.len() as f64) * trim).floor() as usize;
    let kept = &sorted[cut..sorted.len() - cut];
    kept.iter().sum::<f64>() / kept.len() as f64
}

/// ROC curve points for scored predictions: sweep the decision
/// threshold over every distinct score and emit (false-positive rate,
/// true-positive rate) pairs, from (0,0) to (1,1).
pub fn roc_points(scores: &[f64], labels: &[bool]) -> Vec<(f64, f64)> {
    assert_eq!(scores.len(), labels.len());
    assert!(!scores.is_empty());
    let pos = labels.iter().filter(|&&l| l).count().max(1) as f64;
    let neg = labels.iter().filter(|&&l| !l).count().max(1) as f64;
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("finite scores"));
    let mut tp = 0.0;
    let mut fp = 0.0;
    let mut pts = vec![(0.0, 0.0)];
    let mut i = 0;
    while i < order.len() {
        // Process ties together so the curve is threshold-consistent.
        let s = scores[order[i]];
        while i < order.len() && scores[order[i]] == s {
            if labels[order[i]] {
                tp += 1.0;
            } else {
                fp += 1.0;
            }
            i += 1;
        }
        pts.push((fp / neg, tp / pos));
    }
    pts
}

/// Area under the ROC curve by trapezoidal integration.
pub fn auc(points: &[(f64, f64)]) -> f64 {
    points.windows(2).map(|w| (w[1].0 - w[0].0) * (w[0].1 + w[1].1) / 2.0).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_tally() {
        let pred = [true, true, false, false, true];
        let actual = [true, false, false, true, true];
        let c = Confusion::tally(&pred, &actual);
        assert_eq!(c, Confusion { tp: 2, fp: 1, tn: 1, fn_: 1 });
        assert_eq!(c.total(), 5);
        assert!((c.misclassification_rate() - 0.4).abs() < 1e-12);
        assert!((c.fn_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert!((c.fp_rate() - 0.5).abs() < 1e-12);
        assert!((c.accuracy() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn perfect_and_empty_edge_cases() {
        let c = Confusion::tally(&[true, false], &[true, false]);
        assert_eq!(c.misclassification_rate(), 0.0);
        let all_neg = Confusion::tally(&[false, false], &[false, false]);
        assert_eq!(all_neg.fn_rate(), 0.0, "no positives: rate defined as 0");
        assert_eq!(Confusion::default().misclassification_rate(), 0.0);
    }

    #[test]
    fn trimmed_mean_drops_outliers() {
        // 50 ones plus two wild outliers; 2% trim on 52 values cuts one
        // from each end.
        let mut v = vec![1.0; 50];
        v.push(1000.0);
        v.push(-1000.0);
        let m = trimmed_mean(&v, 0.02);
        assert!((m - 1.0).abs() < 1e-12, "{m}");
    }

    #[test]
    fn trimmed_mean_zero_trim_is_mean() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert!((trimmed_mean(&v, 0.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn trimmed_mean_rejects_nan() {
        let _ = trimmed_mean(&[1.0, f64::NAN], 0.02);
    }

    #[test]
    fn roc_perfect_separation_has_auc_one() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        let pts = roc_points(&scores, &labels);
        assert_eq!(pts.first(), Some(&(0.0, 0.0)));
        assert_eq!(pts.last(), Some(&(1.0, 1.0)));
        assert!((auc(&pts) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn roc_reversed_scores_have_auc_zero() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [true, true, false, false];
        assert!(auc(&roc_points(&scores, &labels)) < 1e-12);
    }

    #[test]
    fn roc_random_scores_near_half() {
        let scores: Vec<f64> = (0..200).map(|i| ((i * 37) % 101) as f64 / 101.0).collect();
        let labels: Vec<bool> = (0..200).map(|i| i % 2 == 0).collect();
        let a = auc(&roc_points(&scores, &labels));
        assert!((a - 0.5).abs() < 0.12, "AUC {a}");
    }

    #[test]
    fn roc_handles_ties() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let labels = [true, false, true, false];
        let pts = roc_points(&scores, &labels);
        // One tie block: straight diagonal.
        assert_eq!(pts, vec![(0.0, 0.0), (1.0, 1.0)]);
        assert!((auc(&pts) - 0.5).abs() < 1e-12);
    }
}
