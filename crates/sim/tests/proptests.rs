//! Property-based tests for the simulator's collective lowering and
//! network models.

use masim_sim::lower::{lower, Schedule};
use masim_sim::{simulate, ModelKind, SimConfig};
use masim_topo::{Machine, NetworkConfig, Torus3d};
use masim_trace::{CollKind, Rank, RankBuilder, Time, Trace, TraceMeta};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

fn arb_kind() -> impl Strategy<Value = CollKind> {
    prop::sample::select(CollKind::ALL.to_vec())
}

/// Cross-rank schedule consistency for arbitrary (kind, p, bytes, root).
fn check(kind: CollKind, p: u32, bytes: u64, root: u32) -> Result<(), TestCaseError> {
    let root = Rank(root % p);
    let scheds: Vec<Schedule> = (0..p).map(|r| lower(kind, Rank(r), p, bytes, root)).collect();
    let rounds = scheds[0].rounds.len();
    for s in &scheds {
        prop_assert_eq!(s.rounds.len(), rounds);
    }
    for round in 0..rounds {
        let mut sends: HashMap<(u32, u32), Vec<u64>> = HashMap::new();
        let mut recvs: HashMap<(u32, u32), Vec<u64>> = HashMap::new();
        for (r, s) in scheds.iter().enumerate() {
            for &(peer, b) in &s.rounds[round].sends {
                prop_assert!(peer.0 < p);
                sends.entry((r as u32, peer.0)).or_default().push(b);
            }
            for &(peer, b) in &s.rounds[round].recvs {
                prop_assert!(peer.0 < p);
                recvs.entry((peer.0, r as u32)).or_default().push(b);
            }
        }
        prop_assert_eq!(sends, recvs, "{} p={} round {}", kind, p, round);
    }
    Ok(())
}

proptest! {
    /// Lowered collectives pair sends and receives exactly, for any
    /// world size (including non-powers-of-two), payload, and root.
    #[test]
    fn lowering_is_consistent(
        kind in arb_kind(),
        p in 2u32..40,
        bytes in prop::sample::select(vec![0u64, 8, 512, 4096, 64 * 1024, 1 << 20]),
        root in 0u32..40,
    ) {
        check(kind, p, bytes, root)?;
    }

    /// Simulated random pairwise exchanges terminate and respect the
    /// lower bound: no model finishes faster than the largest message's
    /// uncontended Hockney time.
    #[test]
    fn simulation_respects_hockney_lower_bound(
        pairs in 1usize..5,
        bytes in 1_000u64..200_000,
    ) {
        let ranks = (pairs * 2) as u32;
        let machine = Machine::new(
            "t",
            Arc::new(Torus3d::new(2, 2, 2, 2)),
            NetworkConfig::new(10.0, 2_000),
            4,
        );
        prop_assume!(ranks <= machine.capacity());
        let meta = TraceMeta {
            app: "prop".into(),
            machine: "t".into(),
            ranks,
            ranks_per_node: 1,
            problem_size: 1,
            seed: 0,
        };
        let mut trace = Trace::empty(meta);
        for p in 0..pairs {
            let a = Rank((2 * p) as u32);
            let b = Rank((2 * p + 1) as u32);
            let mut ba = RankBuilder::new(a);
            ba.send(b, bytes, p as u32, Time::ZERO);
            let mut bb = RankBuilder::new(b);
            bb.recv(a, bytes, p as u32, Time::ZERO);
            trace.events[a.idx()] = ba.finish();
            trace.events[b.idx()] = bb.finish();
        }
        prop_assert_eq!(trace.validate(), Ok(()));
        let floor = machine.net.bandwidth.transfer_time(bytes);
        for model in ModelKind::study_models() {
            let cfg = SimConfig {
                machine: machine.clone(),
                mapping: masim_topo::Mapping::block(ranks, 1),
                model,
                compute_scale: 1.0,
            };
            let r = simulate(&trace, &cfg);
            prop_assert!(
                r.total >= floor,
                "{}: {:?} beat the Hockney floor {:?}",
                model.name(),
                r.total,
                floor
            );
            // And nothing runs forever: 1000x the floor is generous.
            prop_assert!(r.total < floor * 1000 + Time::from_ms(1));
        }
    }

    /// Compute scaling is monotone: a faster CPU never slows the app.
    #[test]
    fn compute_scale_monotone(scale in 0.1f64..1.0) {
        let machine = Machine::cielito();
        let cfg = masim_workloads::GenConfig::test_default(masim_workloads::App::MiniFe, 8);
        let trace = masim_workloads::generate(&cfg);
        let base = SimConfig::new(machine.clone(), ModelKind::Flow, &trace);
        let fast = SimConfig { compute_scale: scale, ..base.clone() };
        let t_base = simulate(&trace, &base).total;
        let t_fast = simulate(&trace, &fast).total;
        prop_assert!(t_fast <= t_base, "{t_fast:?} > {t_base:?} at scale {scale}");
    }
}
