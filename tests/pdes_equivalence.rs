//! The intra-trace PDES determinism contract: partitioning the packet
//! model onto `WindowedPdes` (`--sim-threads N > 1`) must produce
//! predictions bit-identical to the sequential engine, at every thread
//! count, because the partition count and the cross-partition message
//! order are pure functions of the topology — never of the worker
//! count. These tests pin that equivalence at three layers: the
//! `SimResult` fields, the shared telemetry schema, and typed failure
//! behaviour.

use masim_obs::MetricSet;
use masim_sim::{
    simulate, simulate_budgeted, simulate_limited_observed, ModelKind, SimConfig, SimLimits,
    SimResult,
};
use masim_topo::Machine;
use masim_trace::Trace;
use masim_workloads::{generate, App, GenConfig};

const SEEDS: [u64; 3] = [7, 41, 99];
const THREADS: [usize; 3] = [1, 2, 4];

fn packet_cfg(trace: &Trace, sim_threads: usize) -> SimConfig {
    let mut cfg =
        SimConfig::new(Machine::cielito(), ModelKind::Packet { packet_bytes: 1024 }, trace);
    cfg.sim_threads = sim_threads;
    cfg
}

/// CG(64) spread two ranks per node: 32 of cielito's 64 nodes, 16 of
/// its 32 switches, so the 8-way partition sees real cross-LP traffic.
/// (At the bench density of 16 ranks/node the trace fits on 4 nodes and
/// a single partition — correct, but a vacuous determinism check.)
fn cg_trace(seed: u64) -> Trace {
    let mut gcfg = GenConfig::test_default(App::Cg, 64);
    gcfg.machine = "cielito".into();
    gcfg.ranks_per_node = 2;
    gcfg.seed = seed;
    generate(&gcfg)
}

fn assert_identical(a: &SimResult, b: &SimResult, tag: &str) {
    assert_eq!(a.total, b.total, "{tag}: total");
    assert_eq!(a.per_rank, b.per_rank, "{tag}: per_rank");
    assert_eq!(a.comm_time, b.comm_time, "{tag}: comm_time");
    assert_eq!(a.events, b.events, "{tag}: events");
    assert_eq!(a.messages, b.messages, "{tag}: messages");
    assert_eq!(a.work_units, b.work_units, "{tag}: work_units");
    assert_eq!(a.max_link_bytes, b.max_link_bytes, "{tag}: max_link_bytes");
}

/// The core contract: for every app, seed, and thread count, the
/// partitioned packet model's `SimResult` equals the sequential
/// engine's, field for field.
#[test]
fn partitioned_packet_model_is_bit_identical() {
    for app in App::ALL {
        for seed in SEEDS {
            let mut gcfg = GenConfig::test_default(app, 32);
            gcfg.machine = "cielito".into();
            // Two ranks per node so even rank-snapping apps (BigFFT
            // drops 32 -> 16) still span multiple nodes and emit
            // inter-node packets; one node would mean zero packet work.
            gcfg.ranks_per_node = 2;
            gcfg.seed = seed;
            let trace = generate(&gcfg);
            let seq = simulate(&trace, &packet_cfg(&trace, 1));
            assert!(seq.events > 0 && seq.work_units > 0, "{app}/{seed}: trivial trace");
            for threads in THREADS {
                let par = simulate(&trace, &packet_cfg(&trace, threads));
                assert_identical(&seq, &par, &format!("{app}/seed{seed}/t{threads}"));
            }
        }
    }
}

/// The bench workload (packet/CG(64) on cielito, the PR's speedup
/// gate): larger trace, more partitions crossing, same bit-identity.
#[test]
fn cg64_bench_shape_is_bit_identical() {
    let trace = cg_trace(99);
    let seq = simulate(&trace, &packet_cfg(&trace, 1));
    for threads in [2, 4, 8] {
        let par = simulate(&trace, &packet_cfg(&trace, threads));
        assert_identical(&seq, &par, &format!("cg64/t{threads}"));
    }
}

/// The telemetry both paths share must agree exactly: engine event
/// counts, replay counters, packet-model work, link aggregates, and the
/// message-size histogram. Executor-specific series (`des.pdes.*`,
/// queue occupancy, arena footprint) are allowed to exist on one side
/// only — CI's normalize step strips them before byte-diffing reports.
#[test]
fn shared_metrics_schema_agrees() {
    const SHARED_COUNTERS: [&str; 8] = [
        "des.engine.processed",
        "des.engine.scheduled",
        "des.engine.cancelled",
        "sim.runner.messages",
        "sim.budget.consumed",
        "sim.packet.packets",
        "sim.packet.hops",
        "sim.link.bytes_total",
    ];
    let trace = cg_trace(41);
    let run = |threads: usize| {
        let ms = MetricSet::new();
        simulate_limited_observed(
            &trace,
            &packet_cfg(&trace, threads),
            SimLimits::unlimited(),
            &ms,
        )
        .expect("run completes");
        ms.snapshot()
    };
    let seq = run(1);
    let par = run(4);
    for name in SHARED_COUNTERS {
        assert_eq!(
            seq.counters.get(name),
            par.counters.get(name),
            "counter {name} diverged between sequential and partitioned runs"
        );
    }
    assert_eq!(
        seq.counters.get("sim.link.links_used"),
        par.counters.get("sim.link.links_used"),
        "disjoint per-LP link sets must cover the same links"
    );
    assert_eq!(
        seq.gauges.get("sim.link.bytes_max"),
        par.gauges.get("sim.link.bytes_max"),
        "busiest-link bytes diverged"
    );
    assert_eq!(
        seq.hists.get("sim.msg.bytes"),
        par.hists.get("sim.msg.bytes"),
        "message-size distribution diverged"
    );
    // The partitioned run must additionally surface its executor stats.
    assert!(par.counters.get("des.pdes.windows").copied().unwrap_or(0) > 0);
    assert!(par.counters.get("des.pdes.crossings").copied().unwrap_or(0) > 0);
}

/// Typed failures survive partitioning: a budget too small for the
/// trace trips `BudgetExhausted` (window-aligned, so the trip point is
/// thread-count independent), never a panic.
#[test]
fn budget_trips_as_typed_error_at_any_thread_count() {
    let trace = cg_trace(7);
    let mut trips = Vec::new();
    for threads in [2, 4] {
        let err = simulate_budgeted(&trace, &packet_cfg(&trace, threads), 10_000)
            .expect_err("tiny budget must trip");
        match err {
            masim_sim::SimError::BudgetExhausted { consumed, budget } => {
                assert_eq!(budget, 10_000);
                trips.push(consumed);
            }
            other => panic!("expected BudgetExhausted, got {other}"),
        }
    }
    assert_eq!(trips[0], trips[1], "budget trip point must be worker-count independent");
}

/// Mask floating-point wall-clock seconds (the only live measurement a
/// report prints) so report bytes can be compared across runs — the
/// same contract CI's normalize_timing.py applies before its diffs.
fn mask_floats(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut run = String::new();
    for c in text.chars().chain(std::iter::once('\n')) {
        if c.is_ascii_digit() || c == '.' {
            run.push(c);
        } else {
            if run.contains('.') {
                out.push_str("#.#");
            } else {
                out.push_str(&run);
            }
            run.clear();
            out.push(c);
        }
    }
    out.pop(); // the sentinel '\n'
    out
}

/// Table II rendered from a partitioned run is byte-identical to the
/// sequential rendering once wall seconds are masked; integer fields
/// (app names, rank counts, failure annotations) must match exactly.
/// Table III is the static candidate catalogue — no simulation input,
/// so its bytes cannot depend on the executor; it is rendered once per
/// thread count anyway to pin that assumption.
#[test]
fn table_reports_are_byte_identical_across_sim_threads() {
    let entries = masim_core::report::table2_tiny_entries(7);
    let (seq_text, _) = masim_core::report::table2_observed(&entries, 7, 1);
    let seq_masked = mask_floats(&seq_text);
    let seq_table3 = masim_core::report::table3();
    for threads in [2usize, 4] {
        let (par_text, _) = masim_core::report::table2_observed(&entries, 7, threads);
        assert_eq!(
            seq_masked,
            mask_floats(&par_text),
            "Table II bytes diverged at sim_threads={threads}"
        );
        assert_eq!(seq_table3, masim_core::report::table3());
    }
}

/// Non-packet models and eager-packet runs ignore `sim_threads` and
/// stay on the sequential engine: same results with the knob set.
#[test]
fn non_packet_models_stay_sequential() {
    let trace = cg_trace(7);
    for model in [ModelKind::Flow, ModelKind::PacketFlow { packet_bytes: 8192 }] {
        let mut a = SimConfig::new(Machine::cielito(), model, &trace);
        let mut b = a.clone();
        a.sim_threads = 1;
        b.sim_threads = 4;
        assert_identical(
            &simulate(&trace, &a),
            &simulate(&trace, &b),
            &format!("{}/threads-ignored", model.name()),
        );
    }
}
