//! Study-as-a-service: the `repro serve` daemon and its socket client.
//!
//! The one-shot CLI runs a study and exits; this crate keeps the
//! machinery resident. A [`Server`] listens on a unix-domain socket
//! (and optionally TCP), speaks a length-prefixed JSON protocol
//! ([`protocol`]), queues submitted studies onto the same
//! work-stealing pool the CLI uses, and streams progress, metric
//! sidecars, and the final report back as frames. Completed results
//! land in a content-addressed [`cache`] keyed by `(corpus hash,
//! config hash, code version)`, so resubmitting an identical study
//! replays the stored bytes — bit-identical to a fresh run, with zero
//! simulator invocations.
//!
//! Layering: [`protocol`] (framing + request grammar, typed
//! [`ServeError`]), [`cache`] (keys + memory/disk store),
//! [`server`] (accept loop, session registry, submit path),
//! [`client`] (drives a submission and writes CLI-compatible files).

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod protocol;
pub mod server;

pub use cache::{CacheKey, CachedStudy, ResultCache, CACHE_FORMAT};
pub use client::{submit, SubmitSummary, Target};
pub use protocol::{read_frame, write_frame, Request, ServeError, MAX_FRAME_LEN};
pub use server::{Bind, Server, ServerOptions};
