//! `repro`: regenerate every table and figure of the paper.
//!
//! ```sh
//! cargo run --release -p masim-bench --bin repro -- all
//! cargo run --release -p masim-bench --bin repro -- fig2 fig5
//! cargo run --release -p masim-bench --bin repro -- all --metrics reports/metrics
//! cargo run --release -p masim-bench --bin repro -- bench-summary
//! cargo run --release -p masim-bench --bin repro -- serve --socket repro.sock &
//! cargo run --release -p masim-bench --bin repro -- submit table2 --tiny --socket repro.sock --out out
//! cargo run --release -p masim-bench --bin repro -- ctl shutdown --socket repro.sock
//! ```
//!
//! Reports are printed and written under `reports/`. The full study
//! (235 traces × 4 tools) runs once per invocation and is shared by all
//! requested reports; budget-limited tool failures are part of the
//! result, mirroring the paper's 216/162/235 completion counts. The
//! study spreads traces across a work-stealing worker pool by default
//! (`--threads N`, default = available parallelism); results are
//! bit-identical at any thread count, but the timing reports (Figure 1,
//! Table II) should be measured with `--threads 1` — see DESIGN.md §9.
//!
//! With `--metrics <dir>`, every trace×tool run also writes a JSON+CSV
//! observability sidecar (counters, gauges, wall-clock spans) under
//! `<dir>`, and the run ends by folding them into a top-level
//! `BENCH_obs.json` of per-tool wall-clock and throughput aggregates.
//! `bench-summary` re-folds an existing sidecar directory without
//! re-running anything. `--tiny` shrinks the Table II heavyweights to
//! smoke-test scale (CI uses `table2 --tiny --metrics`).
//!
//! `--profile` (requires `--metrics`) adds a per-phase wall-clock
//! breakdown: generate / lower / simulate phases are folded from the
//! span stats already present in the sidecars, the report phase is
//! timed live around each report's text generation (for `table2` that
//! includes the heavyweight runs it performs inline — their interior is
//! still attributed to generate/lower/simulate via the sidecars). The
//! breakdown is printed and written to `<dir>/profile.json` in sidecar
//! shape, so future perf PRs can attribute wall-clock without an
//! external profiler.
//!
//! `bench-gate [--metrics <dir>] [--tolerance <pct>]` compares the
//! folded `BENCH_obs.json` against the committed `BENCH_baseline.json`:
//! per-tool event counts must match exactly (the simulators are
//! deterministic), while median wall-clock and events/s may regress by
//! at most the tolerance (default 25%; the packet model's events/s is
//! held to a tighter 15% floor, and the `packet-pdes` executor row to
//! 5%, neither of which `--tolerance` can loosen).
//! `--write-baseline` refreshes the committed baseline instead of
//! comparing.
//!
//! `bench-pdes [--metrics <dir>] [--sim-threads <n|auto>]` runs the
//! packet/CG(64) bench trace on both the sequential engine and the
//! windowed PDES executor, checks the predictions are identical, and
//! writes the `packet-pdes` sidecar the gate row folds from.

use masim_core::report;
use masim_core::{
    Dataset, Enhanced, Session, SessionOutcome, SessionSpec, Study, StudyConfig, StudyKind,
    PARALLEL_BACKLOG_GAUGE, PARALLEL_STEALS_COUNTER, PARALLEL_WORKERS_GAUGE, TOOL_WALL_SPAN,
};
use masim_obs::json::Value;
use masim_obs::run::parse_json;
use masim_obs::{HistData, MetricSet, RunMetrics, SpanStats};
use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

const ALL: [&str; 11] = [
    "table1", "fig1", "table2", "fig2", "fig3", "fig4", "fig5", "table3", "table4", "predict",
    "csv",
];

/// Extra reports available by name but not part of `all` (they retrain
/// the model several times): `stability`.
const EXTRA: [&str; 1] = ["stability"];

/// Where the folded per-tool summary lands.
const BENCH_OBS: &str = "BENCH_obs.json";

/// The committed reference the CI bench gate compares against.
const BENCH_BASELINE: &str = "BENCH_baseline.json";

/// Allowed relative slowdown before `bench-gate` fails (per-tool median
/// wall-clock and median per-run events/s). Event *counts* are exempt
/// from any tolerance: the simulators are deterministic, so they must
/// match the baseline exactly.
const GATE_TOLERANCE_PCT: f64 = 25.0;

/// Tighter events/s budget for the packet model, the study's slowest
/// tool and the target of the hot-path work (route arena, lazy
/// injection, integer-hashed matching). Its throughput is the floor the
/// whole study's wall-clock rides on, so it gets less headroom than the
/// generic budget; `GATE_NOISE_SECS` still absorbs µs-scale jitter on
/// the tiny corpus. Applied as `min` with `--tolerance`, so the
/// override can loosen other tools without loosening this floor.
const GATE_PACKET_TOLERANCE_PCT: f64 = 15.0;

/// Budget for the `packet-pdes` row (the windowed-PDES executor timed
/// at one worker on CI): the PDES machinery may cost at most 5% in
/// events/s over its own baseline, so promoting the packet model onto
/// the partitioned executor can never quietly tax the sequential case.
const GATE_PDES_TOLERANCE_PCT: f64 = 5.0;

/// Below this baseline median wall-clock, relative timing comparisons
/// are timer noise (sub-100µs spans swing 2x run to run); such tools
/// keep the exact event-count check but skip the timing gates.
const GATE_WALL_FLOOR_SECS: f64 = 100e-6;

/// Absolute scheduler/timer jitter allowance on top of the relative
/// budget: a timing regression only fails the gate if it also exceeds
/// this many seconds. On the µs-scale `--tiny` corpus this absorbs the
/// run-to-run jitter of a shared CI runner; on real (seconds-scale)
/// workloads it is negligible and the relative budget binds.
const GATE_NOISE_SECS: f64 = 250e-6;

fn main() {
    if let Err(e) = run() {
        eprintln!("repro: {e}");
        std::process::exit(1);
    }
}

struct Options {
    reports: Vec<String>,
    /// Sidecar directory from `--metrics <dir>`.
    metrics: Option<PathBuf>,
    /// Shrink table2 to smoke-test scale.
    tiny: bool,
    /// `bench-summary` subcommand: fold an existing sidecar dir.
    summarize: bool,
    /// `bench-gate` subcommand: compare `BENCH_obs.json` to the
    /// committed baseline and fail on regressions.
    gate: bool,
    /// `bench-gate --write-baseline`: refresh the committed baseline
    /// from the current fold instead of comparing.
    write_baseline: bool,
    /// `bench-gate --tolerance <pct>`: override the slowdown budget.
    tolerance: f64,
    /// `--checkpoint <dir>`: journal each completed trace so an
    /// interrupted run can resume.
    checkpoint: Option<PathBuf>,
    /// `--resume`: reuse an existing journal instead of starting fresh.
    resume: bool,
    /// `--fail-after <n>`: deliberately stop after `n` newly run traces
    /// (exit code 3) — the deterministic interruption hook CI uses to
    /// exercise resume.
    fail_after: Option<usize>,
    /// `--profile`: write a per-phase wall-clock breakdown
    /// (generate/lower/simulate/report) alongside the metric sidecars.
    profile: bool,
    /// `--threads <n>`: worker threads for the full-study and table2
    /// paths (default: `available_parallelism`). Per-tool predictions
    /// and sidecars are bit-identical at any value; host wall-clock
    /// columns (Figure 1, Table II) are only meaningful at 1.
    threads: usize,
    /// `--trace <dir>`: install the process-global timeline tracer and
    /// write `<dir>/trace.json` (Chrome Trace Event Format, loadable in
    /// Perfetto) plus `<dir>/trace.folded` (flamegraph folded stacks)
    /// when the run completes.
    trace: Option<PathBuf>,
    /// `--sim-threads <n|auto>`: intra-trace PDES workers per simulator
    /// run. `1` (the default) is the sequential engine; `N > 1`
    /// partitions the packet model onto N workers; `auto` (stored as 0)
    /// picks the host parallelism for big traces and stays sequential
    /// on tiny ones. Predictions and sidecars are bit-identical at any
    /// value (CI diffs them); composes with the study-level `--threads`.
    sim_threads: usize,
    /// `bench-pdes` subcommand: time the packet/CG(64) bench entry on
    /// the windowed-PDES executor and write a `packet-pdes` sidecar for
    /// the bench gate.
    bench_pdes: bool,
}

/// Exit code for a deliberate `--fail-after` interruption, so scripts
/// can tell "interrupted, resume me" from real failures.
const EXIT_INTERRUPTED: i32 = 3;

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        reports: Vec::new(),
        metrics: None,
        tiny: false,
        summarize: false,
        gate: false,
        write_baseline: false,
        tolerance: GATE_TOLERANCE_PCT,
        checkpoint: None,
        resume: false,
        fail_after: None,
        profile: false,
        threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        trace: None,
        sim_threads: 1,
        bench_pdes: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                let n = it.next().ok_or("--threads requires a count argument")?;
                opts.threads = n
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("--threads: '{n}' is not a positive count"))?;
            }
            "--metrics" => {
                let dir = it.next().ok_or("--metrics requires a directory argument")?;
                opts.metrics = Some(PathBuf::from(dir));
            }
            "--trace" => {
                let dir = it.next().ok_or("--trace requires a directory argument")?;
                opts.trace = Some(PathBuf::from(dir));
            }
            "--checkpoint" => {
                let dir = it.next().ok_or("--checkpoint requires a directory argument")?;
                opts.checkpoint = Some(PathBuf::from(dir));
            }
            "--resume" => opts.resume = true,
            "--fail-after" => {
                let n = it.next().ok_or("--fail-after requires a count argument")?;
                opts.fail_after = Some(
                    n.parse::<usize>()
                        .map_err(|_| format!("--fail-after: '{n}' is not a count"))?,
                );
            }
            "--sim-threads" => {
                let n = it.next().ok_or("--sim-threads requires a count or 'auto'")?;
                opts.sim_threads = if n == "auto" {
                    0
                } else {
                    n.parse::<usize>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| format!("--sim-threads: '{n}' is not a count or 'auto'"))?
                };
            }
            "--tiny" => opts.tiny = true,
            "--profile" => opts.profile = true,
            "bench-summary" => opts.summarize = true,
            "bench-gate" => opts.gate = true,
            "bench-pdes" => opts.bench_pdes = true,
            "--write-baseline" => opts.write_baseline = true,
            "--tolerance" => {
                let pct = it.next().ok_or("--tolerance requires a percentage argument")?;
                opts.tolerance = pct
                    .parse::<f64>()
                    .map_err(|_| format!("--tolerance: '{pct}' is not a number"))?;
                if !opts.tolerance.is_finite() || opts.tolerance < 0.0 {
                    return Err(format!("--tolerance: {pct}% is not a sane budget"));
                }
            }
            _ => opts.reports.push(a),
        }
    }
    if opts.resume && opts.checkpoint.is_none() {
        return Err("--resume requires --checkpoint <dir>".into());
    }
    if opts.fail_after.is_some() && opts.checkpoint.is_none() {
        return Err("--fail-after requires --checkpoint <dir>".into());
    }
    if opts.profile && opts.metrics.is_none() {
        return Err("--profile requires --metrics <dir> (phases fold from the sidecars)".into());
    }
    if opts.reports.is_empty() && !opts.summarize && !opts.gate && !opts.bench_pdes {
        opts.reports = ALL.iter().map(|s| s.to_string()).collect();
    } else if opts.reports.iter().any(|a| a == "all") {
        opts.reports = ALL.iter().map(|s| s.to_string()).collect();
    }
    for a in &opts.reports {
        if !ALL.contains(&a.as_str()) && !EXTRA.contains(&a.as_str()) {
            return Err(format!(
                "unknown report '{a}'; available: {ALL:?}, {EXTRA:?}, 'all', 'bench-summary', \
                 'bench-gate', or 'bench-pdes'"
            ));
        }
    }
    Ok(opts)
}

/// `Option::as_ref` with an error message instead of a panic: a missing
/// study or model is an internal sequencing bug, not a reason to abort
/// the process without saying which report tripped it.
fn need<'a, T>(opt: &'a Option<T>, what: &str, report: &str) -> Result<&'a T, String> {
    opt.as_ref().ok_or_else(|| {
        format!("internal: report '{report}' needs the {what}, but it was not prepared")
    })
}

fn run() -> Result<(), String> {
    // Daemon-mode subcommands are dispatched before the report parser,
    // which treats unknown positionals as report names.
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("serve") => return serve_cmd(&argv[1..]),
        Some("submit") => return submit_cmd(&argv[1..]),
        Some("ctl") => return ctl_cmd(&argv[1..]),
        Some("scale") => return scale_cmd(&argv[1..]),
        _ => {}
    }
    let opts = parse_args()?;
    let metrics_dir = opts.metrics.clone();
    if let Some(dir) = &metrics_dir {
        fs::create_dir_all(dir)
            .map_err(|e| format!("create metrics dir {}: {e}", dir.display()))?;
    }
    if let Some(dir) = &opts.trace {
        fs::create_dir_all(dir).map_err(|e| format!("create trace dir {}: {e}", dir.display()))?;
        // Install before any work runs so every layer's trace_span!/
        // trace_instant! call sites see the global log.
        masim_obs::tracelog::install(masim_obs::tracelog::DEFAULT_LANE_CAPACITY);
    }
    if opts.bench_pdes {
        return bench_pdes_cmd(metrics_dir.as_deref(), opts.sim_threads);
    }
    if opts.summarize && opts.reports.is_empty() {
        let dir = metrics_dir.unwrap_or_else(|| PathBuf::from("reports/metrics"));
        return fold_sidecars(&dir);
    }
    if opts.gate {
        if let Some(dir) = &metrics_dir {
            fold_sidecars(dir)?;
        }
        return bench_gate(opts.write_baseline, opts.tolerance);
    }
    fs::create_dir_all("reports").map_err(|e| format!("create reports/: {e}"))?;

    // Which reports need the full study / the trained model?
    let needs_study = opts.reports.iter().any(|a| !matches!(a.as_str(), "table2" | "table3"));
    let needs_model =
        opts.reports.iter().any(|a| matches!(a.as_str(), "table4" | "predict" | "stability"));

    // Runner telemetry (worker/steal/backlog metrics) for the parallel
    // paths. Kept off the per-tool sidecars, which must stay
    // bit-identical to the sequential runner's.
    let study_ms = MetricSet::new();
    if opts.threads > 1 && opts.reports.iter().any(|a| matches!(a.as_str(), "fig1" | "table2")) {
        eprintln!(
            "note: --threads {} co-schedules the tools, so Figure 1 / Table II host \
             wall-clock columns are not comparable to the paper's; use --threads 1 \
             for timing studies (predictions are identical either way)",
            opts.threads
        );
    }

    // Study config with the PDES knob applied; everything else stays at
    // the defaults, so predictions match the committed baselines.
    let study_cfg = StudyConfig { sim_threads: opts.sim_threads, ..StudyConfig::default() };

    let mut sidecar_count = 0usize;
    let study: Option<Study> = if needs_study {
        eprintln!(
            "running the full 235-trace study ({} thread(s); several minutes)...",
            opts.threads
        );
        let t0 = Instant::now();
        let s = if let Some(ckdir) = &opts.checkpoint {
            let spec = SessionSpec {
                kind: StudyKind::Corpus { indices: None },
                seed: StudyConfig::default().seed,
            };
            let (s, n) = run_with_checkpoint(
                spec,
                ckdir,
                opts.resume,
                opts.fail_after,
                opts.threads,
                opts.sim_threads,
                &study_ms,
                metrics_dir.as_deref(),
            )?;
            sidecar_count += n;
            s
        } else if let Some(dir) = &metrics_dir {
            let (s, sidecars) = if opts.threads > 1 {
                Study::run_filtered_observed_parallel(
                    study_cfg.clone(),
                    |_| true,
                    opts.threads,
                    &study_ms,
                )
            } else {
                Study::run_filtered_observed(study_cfg.clone(), |_| true)
            };
            for (idx, runs) in &sidecars {
                sidecar_count += write_sidecars(dir, &format!("trace{idx:03}"), runs)?;
            }
            s
        } else if opts.threads > 1 {
            Study::run_parallel(study_cfg.clone(), opts.threads)
        } else {
            Study::run(study_cfg.clone())
        };
        eprintln!("study completed in {:?}", t0.elapsed());
        Some(s)
    } else {
        None
    };
    let trained: Option<(Dataset, Enhanced)> = if needs_model {
        let s = need(&study, "study", "table4/predict/stability")?;
        let d = Dataset::from_study(s);
        eprintln!("training the enhanced MFACT (100-round MC-CV)...");
        let e = Enhanced::train(&d, 17);
        Some((d, e))
    } else {
        None
    };

    let mut report_span = SpanStats::default();
    for a in &opts.reports {
        let report_t0 = Instant::now();
        let text = match a.as_str() {
            "table1" => report::table1(need(&study, "study", a)?),
            "fig1" => report::fig1(need(&study, "study", a)?),
            "table2" => {
                eprintln!("running the Table II heavyweights (unbudgeted)...");
                let entries =
                    if opts.tiny { tiny_table2_entries(7) } else { report::table2_entries(7) };
                if let Some(ckdir) = &opts.checkpoint {
                    let spec = SessionSpec { kind: StudyKind::Table2 { tiny: opts.tiny }, seed: 7 };
                    let (s, n) = run_with_checkpoint(
                        spec,
                        ckdir,
                        opts.resume,
                        opts.fail_after,
                        opts.threads,
                        opts.sim_threads,
                        &study_ms,
                        metrics_dir.as_deref(),
                    )?;
                    sidecar_count += n;
                    report::table2_text(&s.traces)
                } else {
                    let (text, sidecars) = if opts.threads > 1 {
                        report::table2_observed_threads(
                            &entries,
                            7,
                            opts.threads,
                            opts.sim_threads,
                            &study_ms,
                        )
                    } else {
                        report::table2_observed(&entries, 7, opts.sim_threads)
                    };
                    if let Some(dir) = &metrics_dir {
                        for (stem, runs) in &sidecars {
                            sidecar_count += write_sidecars(dir, &format!("table2_{stem}"), runs)?;
                        }
                    }
                    text
                }
            }
            "fig2" => report::fig2(need(&study, "study", a)?),
            "fig3" => report::fig3(need(&study, "study", a)?),
            "fig4" => report::fig4(need(&study, "study", a)?),
            "fig5" => {
                let s = need(&study, "study", a)?;
                format!("{}{}", report::fig5(s), report::class_census(s))
            }
            "table3" => report::table3(),
            "csv" => report::study_csv(need(&study, "study", a)?),
            "stability" => {
                let (d, _) = need(&trained, "trained model", a)?;
                report::stability(d, &[7, 17, 42, 99, 123])
            }
            "table4" => report::table4(&need(&trained, "trained model", a)?.1),
            "predict" => {
                let (d, e) = need(&trained, "trained model", a)?;
                report::predict_results(d, e)
            }
            _ => unreachable!("report names were validated in parse_args"),
        };
        report_span.record(report_t0.elapsed().as_nanos() as u64);
        println!("{text}");
        let ext = if a == "csv" { "csv" } else { "txt" };
        let path = format!("reports/{a}.{ext}");
        let mut f = fs::File::create(&path).map_err(|e| format!("create {path}: {e}"))?;
        f.write_all(text.as_bytes()).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }

    if let Some(dir) = &metrics_dir {
        // One extra sidecar for the parallel runner itself (tool =
        // "runner": workers, steals, writer backlog, wall span) so the
        // fold can report the parallel speedup next to the tools.
        if study_ms.snapshot().gauges.get(PARALLEL_WORKERS_GAUGE).copied().unwrap_or(0) > 0 {
            let rm = RunMetrics::with_set(study_ms.clone())
                .label("tool", "runner")
                .label("threads", &opts.threads.to_string());
            sidecar_count += write_sidecars(dir, "study", &[rm])?;
        }
        eprintln!("wrote {sidecar_count} metric sidecar(s) under {}", dir.display());
        fold_sidecars(dir)?;
        if opts.profile {
            write_profile(dir, &report_span)?;
        }
    } else if opts.summarize {
        fold_sidecars(Path::new("reports/metrics"))?;
    }
    if let Some(dir) = &opts.trace {
        write_trace(dir)?;
    }
    Ok(())
}

/// `bench-pdes`: time the packet/CG(64) bench entry on the windowed
/// PDES executor and write a `packet-pdes` metric sidecar so the fold
/// and `bench-gate` gain a PDES row. The sequential engine runs first
/// as the correctness reference; the partitioned result must match it
/// field for field (the determinism contract), and the measured
/// speedup is printed. On CI's single-core runner this is invoked with
/// `--sim-threads 1`, which runs the windowed executor inline on the
/// calling thread — the honest overhead measurement the gate's 5%
/// events/s budget binds; multi-core hosts pass `--sim-threads auto`
/// to record the real speedup.
fn bench_pdes_cmd(metrics_dir: Option<&Path>, sim_threads: usize) -> Result<(), String> {
    use masim_sim::{
        simulate_limited_observed, simulate_partitioned_observed, ModelKind, SimConfig, SimLimits,
    };
    // bench_entries()[1] is the CG(64) cielito entry: communication-
    // heavy enough that the packet model dominates, the regime the
    // intra-trace parallelism targets.
    let entry = masim_bench::bench_entries().swap_remove(1);
    let trace = masim_workloads::generate(&entry.cfg);
    let machine = masim_topo::Machine::by_name(&entry.cfg.machine).map_err(|e| e.to_string())?;
    let model = ModelKind::Packet { packet_bytes: masim_sim::DEFAULT_PACKET_BYTES };
    let workers = masim_core::effective_sim_threads(sim_threads, trace.num_ranks()).max(1);

    let seq_ms = MetricSet::new();
    let seq_cfg = SimConfig::new(machine.clone(), model, &trace);
    let t0 = Instant::now();
    let seq = simulate_limited_observed(&trace, &seq_cfg, SimLimits::unlimited(), &seq_ms)
        .map_err(|e| format!("bench-pdes: sequential reference failed: {e}"))?;
    let seq_wall = t0.elapsed();

    let ms = MetricSet::new();
    let span = ms.span(TOOL_WALL_SPAN);
    let mut cfg = SimConfig::new(machine, model, &trace);
    cfg.sim_threads = workers;
    let par = simulate_partitioned_observed(&trace, &cfg, SimLimits::unlimited(), &ms)
        .map_err(|e| format!("bench-pdes: partitioned run failed: {e}"))?;
    let par_wall = span.stop();

    if (par.total, par.events, par.messages, par.work_units, &par.per_rank)
        != (seq.total, seq.events, seq.messages, seq.work_units, &seq.per_rank)
    {
        return Err(format!(
            "bench-pdes: partitioned result diverged from the sequential engine \
             (events {} vs {}, total {} vs {})",
            par.events, seq.events, par.total, seq.total
        ));
    }

    let speedup = seq_wall.as_secs_f64() / par_wall.as_secs_f64().max(1e-12);
    println!(
        "bench-pdes: packet/{}({}) {} events, {} packets\n  sequential engine {:.3}s, \
         windowed PDES ({} worker(s)) {:.3}s — {speedup:.2}x, predictions identical",
        entry.cfg.app.name(),
        entry.cfg.ranks,
        par.events,
        par.work_units,
        seq_wall.as_secs_f64(),
        workers,
        par_wall.as_secs_f64(),
    );
    if let Some(dir) = metrics_dir {
        let rm = RunMetrics::with_set(ms)
            .label("tool", "packet-pdes")
            .label("app", entry.cfg.app.name())
            .label("machine", &entry.cfg.machine)
            .label("ranks", &entry.cfg.ranks.to_string())
            .label("seed", &entry.cfg.seed.to_string())
            .label("sim_threads", &workers.to_string());
        let n = write_sidecars(dir, "bench_cg64", &[rm])?;
        eprintln!("wrote {n} packet-pdes sidecar(s) under {}", dir.display());
    }
    Ok(())
}

/// Parse a byte count with an optional binary suffix: `8g`/`8G` = 8 GiB,
/// `512m` = 512 MiB, `64k` = 64 KiB, plain digits = bytes.
fn parse_bytes(s: &str) -> Result<u64, String> {
    let (num, mult) = match s.as_bytes().last() {
        Some(b'k' | b'K') => (&s[..s.len() - 1], 1u64 << 10),
        Some(b'm' | b'M') => (&s[..s.len() - 1], 1u64 << 20),
        Some(b'g' | b'G') => (&s[..s.len() - 1], 1u64 << 30),
        _ => (s, 1),
    };
    num.parse::<u64>()
        .ok()
        .and_then(|n| n.checked_mul(mult))
        .ok_or_else(|| format!("'{s}' is not a byte count (use plain bytes or a k/m/g suffix)"))
}

/// `repro scale`: the mega-scale smoke path. Generate a trace for a
/// scale machine, stream it to disk in the MASS v1 format, drop the
/// in-memory copy, and replay the *streamed* trace through the packet
/// model under a resident-memory budget. Exercises exactly the three
/// panics-turned-errors of the mega-scale work: route-arena caps,
/// oversized messages, and memory budgets all land as typed failures.
///
/// `--metrics <dir>` writes a `tool=scale` sidecar and folds the
/// directory into `BENCH_obs.json`, whose top-level `host` entry then
/// carries this process's peak RSS next to the simulator's own
/// `route_arena_bytes` accounting.
fn scale_cmd(args: &[String]) -> Result<(), String> {
    use masim_core::ToolFailure;
    use masim_sim::{
        simulate_streamed_observed, ModelKind, SimConfig, SimLimits, DEFAULT_PACKET_BYTES,
    };
    use masim_trace::StreamedTrace;

    let mut machine_name = "frontier".to_string();
    let mut app_name = "CNS".to_string();
    let mut ranks: u32 = 65_536;
    let mut trace_dir: Option<PathBuf> = None;
    let mut mem_budget = u64::MAX;
    let mut metrics: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--machine" => {
                machine_name = it.next().ok_or("scale: --machine requires a name")?.clone();
            }
            "--app" => app_name = it.next().ok_or("scale: --app requires a name")?.clone(),
            "--ranks" => {
                let n = it.next().ok_or("scale: --ranks requires a count")?;
                ranks = n
                    .parse::<u32>()
                    .ok()
                    .filter(|&n| n >= 2)
                    .ok_or_else(|| format!("scale: --ranks '{n}' is not a rank count"))?;
            }
            "--trace-dir" => {
                trace_dir = Some(PathBuf::from(
                    it.next().ok_or("scale: --trace-dir requires a directory")?,
                ));
            }
            "--mem-budget" => {
                let s = it.next().ok_or("scale: --mem-budget requires a byte count")?;
                mem_budget = parse_bytes(s).map_err(|e| format!("scale: --mem-budget {e}"))?;
            }
            "--metrics" => {
                metrics =
                    Some(PathBuf::from(it.next().ok_or("scale: --metrics requires a directory")?));
            }
            other => return Err(format!("scale: unknown argument '{other}'")),
        }
    }
    let trace_dir = trace_dir.ok_or("scale: --trace-dir <dir> is required")?;
    fs::create_dir_all(&trace_dir)
        .map_err(|e| format!("scale: create trace dir {}: {e}", trace_dir.display()))?;
    if let Some(dir) = &metrics {
        fs::create_dir_all(dir)
            .map_err(|e| format!("scale: create metrics dir {}: {e}", dir.display()))?;
    }

    let machine = masim_topo::Machine::by_name(&machine_name).map_err(|e| e.to_string())?;
    let app = masim_workloads::App::ALL
        .into_iter()
        .find(|a| a.name().eq_ignore_ascii_case(&app_name))
        .ok_or_else(|| format!("scale: unknown app '{app_name}'"))?;

    let mut gcfg = masim_workloads::GenConfig::test_default(app, ranks);
    gcfg.machine = machine_name.clone();
    gcfg.ranks_per_node = machine.cores_per_node;
    if gcfg.ranks > machine.capacity() {
        return Err(format!(
            "scale: {} ranks exceed {machine_name}'s capacity of {}",
            gcfg.ranks,
            machine.capacity()
        ));
    }

    // Stage 1: generate, stream to disk, and *drop* the in-memory trace
    // — from here on the simulator sees only the encoded bytes.
    let t0 = Instant::now();
    let path = {
        let trace = masim_workloads::generate(&gcfg);
        let path = trace_dir.join(format!("{}_{}.mass", app.name(), gcfg.ranks));
        masim_trace::write_stream(&trace, &path)
            .map_err(|e| format!("scale: write stream: {e}"))?;
        path
    };
    let gen_secs = t0.elapsed().as_secs_f64();
    let stream = StreamedTrace::open(&path).map_err(|e| format!("scale: open stream: {e}"))?;
    eprintln!(
        "scale: {}({}) on {machine_name}: {} events streamed to {} ({} B encoded) in {gen_secs:.1}s",
        app.name(),
        gcfg.ranks,
        stream.num_events(),
        path.display(),
        stream.resident_bytes(),
    );

    // Stage 2: replay the streamed trace through the packet model under
    // the memory budget. Streamed replay is sequential by construction.
    let ms = MetricSet::new();
    let cfg = SimConfig::for_streamed(
        machine,
        ModelKind::Packet { packet_bytes: DEFAULT_PACKET_BYTES },
        &stream,
    );
    let limits = SimLimits::unlimited().with_memory_budget(mem_budget);
    let span = ms.span(TOOL_WALL_SPAN);
    let res = simulate_streamed_observed(&stream, &cfg, limits, &ms);
    let wall = span.stop();

    let failure = res.as_ref().err().map(|e| ToolFailure::from_sim(e.clone()));
    if let Some(dir) = &metrics {
        let mut rm = RunMetrics::with_set(ms.clone())
            .label("tool", "scale")
            .label("app", app.name())
            .label("machine", &machine_name)
            .label("ranks", &gcfg.ranks.to_string())
            .label("seed", &gcfg.seed.to_string());
        if let Some(f) = &failure {
            rm = rm.label("failure", f.code());
        }
        let n = write_sidecars(dir, "scale", &[rm])?;
        eprintln!("scale: wrote {n} sidecar(s) under {}", dir.display());
        fold_sidecars(dir)?;
    }
    match res {
        Ok(r) => {
            let snap = ms.snapshot();
            let arena = snap.gauges.get("sim.route.arena_bytes").copied().unwrap_or(0);
            println!(
                "scale: {}({}) packet model finished in {:.1}s: predicted {}, {} events, \
                 {} packets, route arena {} B, peak RSS {} B",
                app.name(),
                gcfg.ranks,
                wall.as_secs_f64(),
                r.total,
                r.events,
                r.work_units,
                arena,
                masim_obs::peak_rss_bytes(),
            );
            Ok(())
        }
        Err(e) => {
            let f = failure.expect("failure recorded for the error branch");
            Err(format!("scale: simulation failed ({}): {e}", f.code()))
        }
    }
}

/// `repro serve`: run the study-as-a-service daemon until a `shutdown`
/// request arrives. `--socket <path>` and/or `--tcp <addr>` choose the
/// transports; `--cache-dir <dir>` mirrors the content-addressed result
/// cache to disk so identical resubmissions replay without running a
/// single simulator; `--trace <dir>` exports the daemon's timeline on
/// exit, exactly like the one-shot CLI.
fn serve_cmd(args: &[String]) -> Result<(), String> {
    let mut socket: Option<PathBuf> = None;
    let mut tcp: Option<String> = None;
    let mut threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut sim_threads = 1usize;
    let mut cache_dir: Option<PathBuf> = None;
    let mut trace: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => {
                socket = Some(PathBuf::from(it.next().ok_or("serve: --socket requires a path")?));
            }
            "--tcp" => tcp = Some(it.next().ok_or("serve: --tcp requires an address")?.clone()),
            "--threads" => {
                let n = it.next().ok_or("serve: --threads requires a count")?;
                threads = n
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("serve: --threads '{n}' is not a positive count"))?;
            }
            "--sim-threads" => {
                let n = it.next().ok_or("serve: --sim-threads requires a count or 'auto'")?;
                sim_threads = if n == "auto" {
                    0
                } else {
                    n.parse::<usize>().ok().filter(|&n| n > 0).ok_or_else(|| {
                        format!("serve: --sim-threads '{n}' is not a count or 'auto'")
                    })?
                };
            }
            "--cache-dir" => {
                cache_dir =
                    Some(PathBuf::from(it.next().ok_or("serve: --cache-dir requires a path")?));
            }
            "--trace" => {
                trace = Some(PathBuf::from(it.next().ok_or("serve: --trace requires a path")?));
            }
            other => return Err(format!("serve: unknown argument '{other}'")),
        }
    }
    let mut binds = Vec::new();
    if let Some(p) = &socket {
        binds.push(masim_serve::Bind::Unix(p.clone()));
    }
    if let Some(a) = &tcp {
        binds.push(masim_serve::Bind::Tcp(a.clone()));
    }
    if binds.is_empty() {
        return Err("serve: need --socket <path> and/or --tcp <addr>".into());
    }
    if let Some(dir) = &trace {
        fs::create_dir_all(dir).map_err(|e| format!("create trace dir {}: {e}", dir.display()))?;
        masim_obs::tracelog::install(masim_obs::tracelog::DEFAULT_LANE_CAPACITY);
    }
    let server =
        masim_serve::Server::new(masim_serve::ServerOptions { threads, sim_threads, cache_dir });
    let descr: Vec<String> = binds
        .iter()
        .map(|b| match b {
            masim_serve::Bind::Unix(p) => format!("unix:{}", p.display()),
            masim_serve::Bind::Tcp(a) => format!("tcp:{a}"),
        })
        .collect();
    eprintln!("serve: listening on {} ({threads} thread(s))", descr.join(", "));
    server.serve(&binds).map_err(|e| format!("serve: {e}"))?;
    eprintln!("serve: shut down");
    if let Some(dir) = &trace {
        write_trace(dir)?;
    }
    Ok(())
}

/// `repro submit`: drive one study through a running daemon and
/// materialize the streamed response under `--out <dir>` in the same
/// layout the one-shot CLI writes (report at the top, sidecars under
/// `metrics/`), plus a `response.json` summary for scripts.
fn submit_cmd(args: &[String]) -> Result<(), String> {
    let mut target: Option<masim_serve::Target> = None;
    let mut out = PathBuf::from("serve_out");
    let mut study: Option<String> = None;
    let mut tiny = false;
    let mut seed = 7u64;
    let mut indices: Option<Vec<usize>> = None;
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => {
                target = Some(masim_serve::Target::Unix(PathBuf::from(
                    it.next().ok_or("submit: --socket requires a path")?,
                )));
            }
            "--tcp" => {
                target = Some(masim_serve::Target::Tcp(
                    it.next().ok_or("submit: --tcp requires an address")?.clone(),
                ));
            }
            "--out" => out = PathBuf::from(it.next().ok_or("submit: --out requires a path")?),
            "--tiny" => tiny = true,
            "--quiet" => quiet = true,
            "--seed" => {
                let n = it.next().ok_or("submit: --seed requires a number")?;
                seed = n.parse().map_err(|_| format!("submit: --seed '{n}' is not a number"))?;
            }
            "--indices" => {
                let list = it.next().ok_or("submit: --indices requires a,b,c")?;
                let parsed: Result<Vec<usize>, _> =
                    list.split(',').map(|t| t.trim().parse::<usize>()).collect();
                indices =
                    Some(parsed.map_err(|_| format!("submit: --indices '{list}' is not a,b,c"))?);
            }
            name if !name.starts_with('-') && study.is_none() => study = Some(name.to_string()),
            other => return Err(format!("submit: unknown argument '{other}'")),
        }
    }
    let target = target.ok_or("submit: need --socket <path> or --tcp <addr>")?;
    let kind = match study.as_deref() {
        Some("table2") => StudyKind::Table2 { tiny },
        Some("study") => StudyKind::Corpus { indices },
        Some(other) => return Err(format!("submit: unknown study '{other}' (table2|study)")),
        None => return Err("submit: need a study name (table2|study)".into()),
    };
    fs::create_dir_all(&out).map_err(|e| format!("create out dir {}: {e}", out.display()))?;
    let summary = masim_serve::submit(&target, SessionSpec { kind, seed }, &out, quiet)
        .map_err(|e| format!("submit: {e}"))?;
    eprintln!(
        "submit: session {} cache {} ran {}/{} in {:.3}s; wrote {}",
        summary.session,
        summary.cache,
        summary.ran,
        summary.total,
        summary.wall_ns as f64 / 1e9,
        out.join(&summary.report_name).display()
    );
    Ok(())
}

/// `repro ctl <status|shutdown|cancel <id>>`: one control request to a
/// running daemon; the response frame is printed as JSON on stdout.
fn ctl_cmd(args: &[String]) -> Result<(), String> {
    let mut target: Option<masim_serve::Target> = None;
    let mut verb: Option<String> = None;
    let mut session: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => {
                target = Some(masim_serve::Target::Unix(PathBuf::from(
                    it.next().ok_or("ctl: --socket requires a path")?,
                )));
            }
            "--tcp" => {
                target = Some(masim_serve::Target::Tcp(
                    it.next().ok_or("ctl: --tcp requires an address")?.clone(),
                ));
            }
            name if !name.starts_with('-') && verb.is_none() => verb = Some(name.to_string()),
            name if !name.starts_with('-') && session.is_none() => {
                session = Some(name.to_string());
            }
            other => return Err(format!("ctl: unknown argument '{other}'")),
        }
    }
    let target = target.ok_or("ctl: need --socket <path> or --tcp <addr>")?;
    let resp = match verb.as_deref() {
        Some("status") => masim_serve::client::status(&target),
        Some("shutdown") => masim_serve::client::shutdown(&target),
        Some("cancel") => {
            let id = session.ok_or("ctl: cancel needs a session id")?;
            masim_serve::client::cancel(&target, &id)
        }
        _ => return Err("ctl: need a verb (status|shutdown|cancel <id>)".into()),
    }
    .map_err(|e| format!("ctl: {e}"))?;
    println!("{}", resp.to_json());
    Ok(())
}

/// `--trace`: export the installed timeline log as Chrome Trace Event
/// JSON (Perfetto-loadable; one track per study worker) and folded
/// flamegraph stacks.
fn write_trace(dir: &Path) -> Result<(), String> {
    let Some(tl) = masim_obs::tracelog::current() else {
        // Tracing compiled out (obs built without its default feature):
        // the flag is accepted but there is nothing to export.
        eprintln!("trace: instrumentation compiled out; no timeline captured");
        return Ok(());
    };
    let json_path = dir.join("trace.json");
    fs::write(&json_path, tl.to_chrome_json())
        .map_err(|e| format!("write {}: {e}", json_path.display()))?;
    let folded_path = dir.join("trace.folded");
    fs::write(&folded_path, tl.to_folded())
        .map_err(|e| format!("write {}: {e}", folded_path.display()))?;
    eprintln!(
        "wrote {} ({} event(s), {} dropped) and {}",
        json_path.display(),
        tl.len(),
        tl.dropped(),
        folded_path.display()
    );
    Ok(())
}

/// Span names whose sidecar stats fold into each `--profile` phase.
/// The `report` phase has no sidecar source; it is timed live around
/// the report-generation loop.
const PROFILE_PHASES: [(&str, &str); 3] = [
    ("generate", "workloads.corpus.generate"),
    ("lower", "sim.runner.lower"),
    ("simulate", "sim.runner.simulate"),
];

/// `--profile`: fold the per-phase spans out of the sidecars in `dir`,
/// attach the live-measured report phase, print the breakdown, and
/// write it to `<dir>/profile.json` in the same labels/counters/gauges/
/// spans shape as the sidecars (with no `tool` label, so folds skip it).
fn write_profile(dir: &Path, report: &SpanStats) -> Result<(), String> {
    let mut phases: BTreeMap<&str, SpanStats> = BTreeMap::new();
    let rd = fs::read_dir(dir).map_err(|e| format!("read metrics dir {}: {e}", dir.display()))?;
    for ent in rd {
        let path = ent.map_err(|e| format!("list {}: {e}", dir.display()))?.path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let text = fs::read_to_string(&path)
            .map_err(|e| format!("read sidecar {}: {e}", path.display()))?;
        let data =
            parse_json(&text).map_err(|e| format!("parse sidecar {}: {e}", path.display()))?;
        // Only tool-labeled sidecars feed the phases; a profile.json
        // left over from a previous run must not fold into itself.
        if !data.labels.contains_key("tool") {
            continue;
        }
        for (phase, span_name) in PROFILE_PHASES {
            if let Some(s) = data.snapshot.spans.get(span_name) {
                phases.entry(phase).or_default().merge(s);
            }
        }
    }
    if report.count > 0 {
        phases.insert("report", report.clone());
    }

    let mut lines = vec![format!(
        "{:<10} {:>8} {:>12} {:>12} {:>12}",
        "phase", "count", "total(s)", "mean(ms)", "max(ms)"
    )];
    let mut spans = Vec::new();
    for (phase, s) in &phases {
        lines.push(format!(
            "{phase:<10} {:>8} {:>12.4} {:>12.3} {:>12.3}",
            s.count,
            s.sum_ns as f64 / 1e9,
            s.mean_ns() as f64 / 1e6,
            s.max_ns as f64 / 1e6
        ));
        spans.push((
            format!("repro.profile.{phase}"),
            Value::Obj(vec![
                ("count".into(), Value::UInt(s.count)),
                ("sum_ns".into(), Value::UInt(s.sum_ns)),
                ("min_ns".into(), Value::UInt(s.min_ns)),
                ("max_ns".into(), Value::UInt(s.max_ns)),
            ]),
        ));
    }
    let json = Value::Obj(vec![
        ("labels".into(), Value::Obj(vec![])),
        ("counters".into(), Value::Obj(vec![])),
        ("gauges".into(), Value::Obj(vec![])),
        ("spans".into(), Value::Obj(spans)),
    ])
    .to_json();
    let path = dir.join("profile.json");
    fs::write(&path, &json).map_err(|e| format!("write {}: {e}", path.display()))?;
    println!("{}", lines.join("\n"));
    eprintln!("wrote {}", path.display());
    Ok(())
}

/// Drive a journaled, resumable session. Sidecars are written only for
/// entries that ran *in this invocation* (recovered entries wrote
/// theirs before the interruption, so a resumed `--metrics` directory
/// ends up with exactly one sidecar set per entry). On a deliberate
/// `--fail-after` interruption, prints resume guidance and exits with
/// [`EXIT_INTERRUPTED`]. This is the same [`Session`] object the
/// `repro serve` daemon runs; the CLI just points its trace callback at
/// sidecar files instead of socket frames.
#[allow(clippy::too_many_arguments)] // run-control knobs, each a distinct caller concern
fn run_with_checkpoint(
    spec: SessionSpec,
    ckdir: &Path,
    resume: bool,
    fail_after: Option<usize>,
    threads: usize,
    sim_threads: usize,
    study_ms: &MetricSet,
    metrics_dir: Option<&Path>,
) -> Result<(Study, usize), String> {
    let mut session = Session::with_checkpoint(spec, ckdir, resume).map_err(|e| e.to_string())?;
    session.set_sim_threads(sim_threads);
    let recovered = session.done();
    if recovered > 0 {
        let path = session
            .checkpoint_path()
            .map_or_else(|| ckdir.display().to_string(), |p| p.display().to_string());
        eprintln!("checkpoint: recovered {recovered} completed trace(s) from {path}");
    }
    let label = format!("{}(resumable)", session.spec().label());
    let mut written = 0usize;
    let mut werr: Option<String> = None;
    let outcome = session
        .run(threads, fail_after, None, study_ms, &label, None, |_, stem, observed| {
            if werr.is_some() {
                return;
            }
            if let Some(dir) = metrics_dir {
                match write_sidecars(dir, stem, &observed.sidecars) {
                    Ok(n) => written += n,
                    Err(e) => werr = Some(e),
                }
            }
        })
        .map_err(|e| e.to_string())?;
    if let Some(e) = werr {
        return Err(e);
    }
    match outcome {
        SessionOutcome::Complete => Ok((session.study(), written)),
        SessionOutcome::Interrupted { done, total } => {
            eprintln!(
                "checkpoint: deliberately interrupted after {done}/{total} trace(s); \
                 rerun with --resume to finish"
            );
            std::process::exit(EXIT_INTERRUPTED);
        }
    }
}

/// The Table II applications shrunk to seconds-scale for CI smoke runs
/// (shared with the equivalence suite via `masim-core`).
fn tiny_table2_entries(seed: u64) -> Vec<masim_workloads::CorpusEntry> {
    report::table2_tiny_entries(seed)
}

/// Write one JSON + one CSV sidecar per tool run; returns how many
/// files were written.
fn write_sidecars(dir: &Path, stem: &str, runs: &[RunMetrics]) -> Result<usize, String> {
    let mut written = 0;
    for rm in runs {
        let tool = rm.labels().get("tool").cloned().unwrap_or_else(|| "run".into());
        for ext in ["json", "csv"] {
            let path = dir.join(format!("{stem}_{tool}.{ext}"));
            let res = if ext == "json" { rm.write_json(&path) } else { rm.write_csv(&path) };
            res.map_err(|e| format!("write sidecar {}: {e}", path.display()))?;
            written += 1;
        }
    }
    Ok(written)
}

/// `bench-summary`: fold every JSON sidecar in `dir` into
/// `BENCH_obs.json` — per tool, the median and max tool wall-clock and
/// the aggregate event throughput.
fn fold_sidecars(dir: &Path) -> Result<(), String> {
    // tool -> per-run (wall_ns, events)
    let mut by_tool: BTreeMap<String, Vec<(u64, u64)>> = BTreeMap::new();
    // tool -> (max peak queue occupancy, max route arena bytes) across
    // runs — the hot-path telemetry the sim runner exports as gauges.
    let mut hot_gauges: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    // tool -> (workers, steals, writer backlog max): parallel-runner
    // telemetry from the `study_runner` sidecar (tool = "runner").
    let mut par_gauges: BTreeMap<String, (u64, u64, u64)> = BTreeMap::new();
    // tool -> hist name -> bucket-merged histogram, for the `dist`
    // section (simulation histograms are only present when the run was
    // traced; the fold carries whatever it finds).
    let mut hist_acc: BTreeMap<String, BTreeMap<String, HistData>> = BTreeMap::new();
    let rd = fs::read_dir(dir).map_err(|e| format!("read metrics dir {}: {e}", dir.display()))?;
    for ent in rd {
        let path = ent.map_err(|e| format!("list {}: {e}", dir.display()))?.path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let text = fs::read_to_string(&path)
            .map_err(|e| format!("read sidecar {}: {e}", path.display()))?;
        let data =
            parse_json(&text).map_err(|e| format!("parse sidecar {}: {e}", path.display()))?;
        let Some(tool) = data.labels.get("tool").cloned() else { continue };
        // The study tags tool wall-clock under one span name; sidecars
        // without it (e.g. trace generation) fall back to their longest
        // recorded span.
        let wall_ns = data
            .snapshot
            .spans
            .get(TOOL_WALL_SPAN)
            .map(|s| s.sum_ns)
            .or_else(|| data.snapshot.spans.values().map(|s| s.sum_ns).max())
            .unwrap_or(0);
        let events = ["des.engine.processed", "mfact.replay.events", "workloads.corpus.events"]
            .iter()
            .find_map(|k| data.snapshot.counters.get(*k))
            .copied()
            .unwrap_or(0);
        let gauge = |name: &str| data.snapshot.gauges.get(name).copied().unwrap_or(0);
        let (occ, arena) = hot_gauges.entry(tool.clone()).or_default();
        *occ = (*occ).max(gauge("sim.queue.peak_occupancy"));
        *arena = (*arena).max(gauge("sim.route.arena_bytes"));
        let counter = |name: &str| data.snapshot.counters.get(name).copied().unwrap_or(0);
        let (w, st, bl) = par_gauges.entry(tool.clone()).or_default();
        *w = (*w).max(gauge(PARALLEL_WORKERS_GAUGE));
        *st = (*st).max(counter(PARALLEL_STEALS_COUNTER));
        *bl = (*bl).max(gauge(PARALLEL_BACKLOG_GAUGE));
        for (name, h) in &data.snapshot.hists {
            if matches!(name.as_str(), "sim.engine.dt_ps" | "sim.msg.bytes") {
                hist_acc.entry(tool.clone()).or_default().entry(name.clone()).or_default().merge(h);
            }
        }
        by_tool.entry(tool).or_default().push((wall_ns, events));
    }
    if by_tool.is_empty() {
        return Err(format!("no metric sidecars with a 'tool' label in {}", dir.display()));
    }

    let mut obj = Vec::new();
    for (tool, mut runs) in by_tool {
        runs.sort_unstable();
        let walls: Vec<u64> = runs.iter().map(|r| r.0).collect();
        let p50_ns = walls[(walls.len() - 1) / 2];
        let max_ns = walls.last().copied().unwrap_or(0);
        let total_events: u64 = runs.iter().map(|r| r.1).sum();
        // Median of per-run throughputs, not total/total: one cold-start
        // run (page faults, first-touch allocation) would otherwise
        // dominate the aggregate at smoke-test scale.
        let mut rates: Vec<f64> =
            runs.iter().filter(|r| r.0 > 0).map(|r| r.1 as f64 / (r.0 as f64 / 1e9)).collect();
        rates.sort_unstable_by(f64::total_cmp);
        let events_per_sec = if rates.is_empty() { 0.0 } else { rates[(rates.len() - 1) / 2] };
        let mut fields = vec![
            ("wall_p50".into(), Value::Num(p50_ns as f64 / 1e9)),
            ("wall_max".into(), Value::Num(max_ns as f64 / 1e9)),
            ("events_per_sec".into(), Value::Num(events_per_sec)),
            ("events_total".into(), Value::UInt(total_events)),
            ("runs".into(), Value::UInt(walls.len() as u64)),
        ];
        // Hot-path telemetry, present only for tools that export it
        // (the simulators); the gate reads only the keys above, so
        // these extra fields are informational.
        let (occ, arena) = hot_gauges.get(&tool).copied().unwrap_or((0, 0));
        if occ > 0 {
            fields.push(("queue_peak_occupancy".into(), Value::UInt(occ)));
        }
        if arena > 0 {
            fields.push(("route_arena_bytes".into(), Value::UInt(arena)));
        }
        // Parallel-runner telemetry (the `runner` pseudo-tool): how many
        // workers ran, how many claims were steals, and the writer's
        // re-sequencing high-water mark. Informational — the gate reads
        // only the standard keys.
        let (workers, steals, backlog) = par_gauges.get(&tool).copied().unwrap_or((0, 0, 0));
        if workers > 0 {
            fields.push(("workers".into(), Value::UInt(workers)));
            fields.push(("steals".into(), Value::UInt(steals)));
            fields.push(("writer_backlog_max".into(), Value::UInt(backlog)));
        }
        // Distribution summaries. Tool wall percentiles are exact
        // (computed from the per-run walls, already sorted); the
        // simulation-side histograms summarize via their log2 buckets
        // and appear only when the runs recorded them (traced runs).
        // The gate reads only the standard keys, so `dist` is
        // tolerated-but-reported there.
        let mut dist = vec![("tool_wall".into(), dist_exact_secs(&walls))];
        if let Some(hists) = hist_acc.get(&tool) {
            for (key, name) in [("sim_dt_ps", "sim.engine.dt_ps"), ("msg_bytes", "sim.msg.bytes")] {
                if let Some(h) = hists.get(name).filter(|h| h.count() > 0) {
                    dist.push((key.into(), dist_hist(h)));
                }
            }
        }
        fields.push(("dist".into(), Value::Obj(dist)));
        obj.push((tool, Value::Obj(fields)));
    }
    // Host-side measurements live only here, never in the per-tool
    // sidecars: the sidecars are diffed byte-for-byte in CI, and RSS
    // varies run to run. The gate ignores this entry (no gated keys).
    obj.push((
        "host".into(),
        Value::Obj(vec![("peak_rss_bytes".into(), Value::UInt(masim_obs::peak_rss_bytes()))]),
    ));
    let json = Value::Obj(obj).to_json();
    fs::write(BENCH_OBS, &json).map_err(|e| format!("write {BENCH_OBS}: {e}"))?;
    println!("{json}");
    eprintln!("wrote {BENCH_OBS}");
    Ok(())
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn pct_exact(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Exact wall-clock percentiles (seconds) from per-run walls in ns.
fn dist_exact_secs(sorted_ns: &[u64]) -> Value {
    Value::Obj(vec![
        ("p50".into(), Value::Num(pct_exact(sorted_ns, 0.50) as f64 / 1e9)),
        ("p90".into(), Value::Num(pct_exact(sorted_ns, 0.90) as f64 / 1e9)),
        ("p99".into(), Value::Num(pct_exact(sorted_ns, 0.99) as f64 / 1e9)),
        ("count".into(), Value::UInt(sorted_ns.len() as u64)),
    ])
}

/// Log2-bucket percentile summary of a merged sidecar histogram.
fn dist_hist(h: &HistData) -> Value {
    Value::Obj(vec![
        ("p50".into(), Value::UInt(h.p50())),
        ("p90".into(), Value::UInt(h.p90())),
        ("p99".into(), Value::UInt(h.p99())),
        ("count".into(), Value::UInt(h.count())),
    ])
}

/// `bench-gate`: compare the freshly folded `BENCH_obs.json` against
/// the committed `BENCH_baseline.json`. Deterministic event counts must
/// match exactly; median wall-clock and events/s may regress by at most
/// `tolerance` percent. With `write_baseline`, refresh the baseline
/// from the current fold instead.
fn bench_gate(write_baseline: bool, tolerance: f64) -> Result<(), String> {
    let obs_text =
        fs::read_to_string(BENCH_OBS).map_err(|e| format!("read {BENCH_OBS}: {e} (run `repro table2 --tiny --metrics <dir>` or `repro bench-summary` first)"))?;
    if write_baseline {
        fs::write(BENCH_BASELINE, &obs_text).map_err(|e| format!("write {BENCH_BASELINE}: {e}"))?;
        eprintln!("refreshed {BENCH_BASELINE} from {BENCH_OBS}");
        return Ok(());
    }
    let base_text = fs::read_to_string(BENCH_BASELINE).map_err(|e| {
        format!("read {BENCH_BASELINE}: {e} (refresh it with `repro bench-gate --write-baseline`)")
    })?;
    let obs = masim_obs::json::parse(&obs_text).map_err(|e| format!("parse {BENCH_OBS}: {e}"))?;
    let base =
        masim_obs::json::parse(&base_text).map_err(|e| format!("parse {BENCH_BASELINE}: {e}"))?;
    let report = gate_compare(&base, &obs, tolerance)?;
    println!("{report}");
    Ok(())
}

/// Pure comparison core for `bench-gate` (unit-tested below). Returns a
/// human-readable per-tool report on success; an error describing every
/// violation on failure.
fn gate_compare(base: &Value, obs: &Value, tolerance: f64) -> Result<String, String> {
    let base_tools = base.as_obj().ok_or("baseline: top level is not an object")?;
    let obs_tools = obs.as_obj().ok_or("observation: top level is not an object")?;
    let slack = 1.0 + tolerance / 100.0;
    let mut lines = vec![
        format!(
            "bench-gate: tolerance {tolerance}% (packet events/s {}%, packet-pdes {}%; \
             event counts exact)",
            tolerance.min(GATE_PACKET_TOLERANCE_PCT),
            tolerance.min(GATE_PDES_TOLERANCE_PCT)
        ),
        format!(
            "{:<14} {:>12} {:>12} {:>14} {:>8}",
            "tool", "wall_p50(s)", "base(s)", "events/s", "status"
        ),
    ];
    let mut violations = Vec::new();
    for (tool, b) in base_tools {
        let Some(o) = obs.get(tool) else {
            violations.push(format!("{tool}: present in baseline but missing from {BENCH_OBS}"));
            continue;
        };
        let mut bad = false;
        // Determinism: events per run are exact or the simulators changed
        // behaviour — a tolerance would only hide it.
        for key in ["events_total", "runs"] {
            let (bv, ov) = (b.get(key).and_then(Value::as_u64), o.get(key).and_then(Value::as_u64));
            if bv != ov {
                violations.push(format!(
                    "{tool}: {key} {} != baseline {} (deterministic count must match exactly)",
                    fmt_opt(ov),
                    fmt_opt(bv)
                ));
                bad = true;
            }
        }
        let bw = b.get("wall_p50").and_then(Value::as_f64).unwrap_or(0.0);
        let ow = o.get("wall_p50").and_then(Value::as_f64).unwrap_or(0.0);
        let measurable = bw >= GATE_WALL_FLOOR_SECS;
        if measurable && ow > bw * slack + GATE_NOISE_SECS {
            violations.push(format!(
                "{tool}: wall_p50 {ow:.4}s is {:.0}% over baseline {bw:.4}s (budget {tolerance}%)",
                (ow / bw - 1.0) * 100.0
            ));
            bad = true;
        }
        let be = b.get("events_per_sec").and_then(Value::as_f64).unwrap_or(0.0);
        let oe = o.get("events_per_sec").and_then(Value::as_f64).unwrap_or(0.0);
        // A throughput drop implies each run's wall grew by
        // per_run_events × (1/oe − 1/be); hold it to the same absolute
        // noise allowance as the direct wall check.
        let per_run = {
            let ev = b.get("events_total").and_then(Value::as_u64).unwrap_or(0) as f64;
            let runs = b.get("runs").and_then(Value::as_u64).unwrap_or(1).max(1) as f64;
            ev / runs
        };
        let eps_budget = match tool.as_str() {
            "packet" => tolerance.min(GATE_PACKET_TOLERANCE_PCT),
            "packet-pdes" => tolerance.min(GATE_PDES_TOLERANCE_PCT),
            _ => tolerance,
        };
        let eps_slack = 1.0 + eps_budget / 100.0;
        if measurable
            && be > 0.0
            && oe > 0.0
            && oe * eps_slack < be
            && per_run * (1.0 / oe - 1.0 / be) > GATE_NOISE_SECS
        {
            violations.push(format!(
                "{tool}: events/s {oe:.0} is {:.0}% below baseline {be:.0} (budget {eps_budget}%)",
                (1.0 - oe / be) * 100.0
            ));
            bad = true;
        }
        lines.push(format!(
            "{tool:<14} {ow:>12.4} {bw:>12.4} {oe:>14.0} {:>8}",
            if bad {
                "FAIL"
            } else if measurable {
                "ok"
            } else {
                "counts" // timing below the noise floor; counts checked
            }
        ));
        // Tail latency is tolerated but reported: p99 swings on shared
        // runners are too noisy to gate on, yet worth surfacing next to
        // the gated medians.
        if let Some(p99) = o
            .get("dist")
            .and_then(|d| d.get("tool_wall"))
            .and_then(|t| t.get("p99"))
            .and_then(Value::as_f64)
        {
            lines.push(format!("{tool:<14}   tool_wall p99 {p99:.4}s (reported, not gated)"));
        }
    }
    for (tool, _) in obs_tools {
        if base.get(tool).is_none() {
            lines.push(format!("{tool:<14} (new tool; not in baseline — refresh it)"));
        }
    }
    if violations.is_empty() {
        Ok(lines.join("\n"))
    } else {
        Err(format!("{}\nbench-gate FAILED:\n  {}", lines.join("\n"), violations.join("\n  ")))
    }
}

fn fmt_opt(v: Option<u64>) -> String {
    v.map_or_else(|| "<missing>".into(), |n| n.to_string())
}

#[cfg(test)]
mod gate_tests {
    use super::*;

    fn tool(wall: f64, eps: f64, events: u64, runs: u64) -> Value {
        Value::Obj(vec![
            ("wall_p50".into(), Value::Num(wall)),
            ("wall_max".into(), Value::Num(wall * 2.0)),
            ("events_per_sec".into(), Value::Num(eps)),
            ("events_total".into(), Value::UInt(events)),
            ("runs".into(), Value::UInt(runs)),
        ])
    }

    fn doc(tools: &[(&str, Value)]) -> Value {
        Value::Obj(tools.iter().map(|(k, v)| (k.to_string(), v.clone())).collect())
    }

    #[test]
    fn identical_fold_passes() {
        let b = doc(&[("packet", tool(0.5, 4e6, 1000, 3))]);
        assert!(gate_compare(&b, &b, 25.0).is_ok());
    }

    #[test]
    fn slowdown_within_budget_passes() {
        let b = doc(&[("packet", tool(0.50, 4e6, 1000, 3))]);
        let o = doc(&[("packet", tool(0.60, 3.4e6, 1000, 3))]);
        assert!(gate_compare(&b, &o, 25.0).is_ok());
    }

    #[test]
    fn slowdown_past_budget_fails() {
        let b = doc(&[("packet", tool(0.50, 4e6, 1000, 3))]);
        let o = doc(&[("packet", tool(0.70, 4e6, 1000, 3))]);
        let err = gate_compare(&b, &o, 25.0).unwrap_err();
        assert!(err.contains("wall_p50"), "{err}");
    }

    #[test]
    fn throughput_drop_past_budget_fails() {
        // Self-consistent magnitudes: 2M events/run at 4M events/s is
        // the 0.5s median wall, so the implied per-run slowdown of the
        // eps drop (0.3s) is far beyond the absolute noise allowance.
        let b = doc(&[("packet", tool(0.50, 4e6, 6_000_000, 3))]);
        let o = doc(&[("packet", tool(0.50, 2.5e6, 6_000_000, 3))]);
        let err = gate_compare(&b, &o, 25.0).unwrap_err();
        assert!(err.contains("events/s"), "{err}");
    }

    #[test]
    fn tiny_scale_jitter_stays_within_noise_allowance() {
        // 150µs spans are above the measurability floor, but a 60%
        // wall / 30% eps swing there is ~100µs of scheduler jitter —
        // within the absolute allowance, so the gate holds.
        let b = doc(&[("flow", tool(150e-6, 3.3e6, 1500, 3))]);
        let o = doc(&[("flow", tool(240e-6, 2.3e6, 1500, 3))]);
        assert!(gate_compare(&b, &o, 25.0).is_ok());
        // The same relative drop with seconds-scale runs is a real
        // regression and fails both timing checks.
        let b = doc(&[("flow", tool(1.5, 3.3e6, 15_000_000, 3))]);
        let o = doc(&[("flow", tool(2.4, 2.3e6, 15_000_000, 3))]);
        let err = gate_compare(&b, &o, 25.0).unwrap_err();
        assert!(err.contains("wall_p50") && err.contains("events/s"), "{err}");
    }

    #[test]
    fn event_count_drift_fails_even_by_one() {
        let b = doc(&[("packet", tool(0.5, 4e6, 1000, 3))]);
        let o = doc(&[("packet", tool(0.5, 4e6, 1001, 3))]);
        let err = gate_compare(&b, &o, 25.0).unwrap_err();
        assert!(err.contains("events_total"), "{err}");
    }

    #[test]
    fn sub_floor_timings_are_noise_but_counts_still_bind() {
        // 30µs baseline median: timer noise — a 10x "slowdown" passes...
        let b = doc(&[("corpus", tool(30e-6, 1e7, 2224, 3))]);
        let slow = doc(&[("corpus", tool(300e-6, 1e6, 2224, 3))]);
        assert!(gate_compare(&b, &slow, 25.0).is_ok());
        // ...but an event-count drift still fails.
        let drift = doc(&[("corpus", tool(30e-6, 1e7, 2225, 3))]);
        assert!(gate_compare(&b, &drift, 25.0).is_err());
    }

    #[test]
    fn packet_throughput_floor_is_tighter() {
        // A 20% events/s drop at seconds scale: inside the generic 25%
        // budget, outside the 15% packet floor — so the same numbers
        // pass as "flow" but fail as "packet".
        let b = |name| doc(&[(name, tool(2.0, 4e6, 24_000_000, 3))]);
        let o = |name| doc(&[(name, tool(2.0, 3.2e6, 24_000_000, 3))]);
        assert!(gate_compare(&b("flow"), &o("flow"), 25.0).is_ok());
        let err = gate_compare(&b("packet"), &o("packet"), 25.0).unwrap_err();
        assert!(err.contains("events/s") && err.contains("budget 15%"), "{err}");
        // `--tolerance` can loosen other tools but never the packet
        // floor.
        let err = gate_compare(&b("packet"), &o("packet"), 50.0).unwrap_err();
        assert!(err.contains("budget 15%"), "{err}");
    }

    #[test]
    fn dist_section_is_tolerated_and_p99_reported() {
        // A fold carrying the new `dist` section still gates cleanly
        // against a baseline without one, and the tail latency shows up
        // as an informational line.
        let b = doc(&[("packet", tool(0.5, 4e6, 1000, 3))]);
        let mut with_dist = tool(0.5, 4e6, 1000, 3);
        if let Value::Obj(fields) = &mut with_dist {
            fields.push((
                "dist".into(),
                Value::Obj(vec![(
                    "tool_wall".into(),
                    Value::Obj(vec![
                        ("p50".into(), Value::Num(0.5)),
                        ("p90".into(), Value::Num(0.6)),
                        ("p99".into(), Value::Num(0.9)),
                        ("count".into(), Value::UInt(3)),
                    ]),
                )]),
            ));
        }
        let o = doc(&[("packet", with_dist)]);
        let report = gate_compare(&b, &o, 25.0).expect("dist must not trip the gate");
        assert!(report.contains("p99 0.9000s"), "{report}");
        assert!(report.contains("not gated"), "{report}");
    }

    #[test]
    fn exact_percentiles_are_nearest_rank() {
        let walls: Vec<u64> = (1..=100).collect();
        assert_eq!(pct_exact(&walls, 0.50), 50);
        assert_eq!(pct_exact(&walls, 0.99), 99);
        assert_eq!(pct_exact(&walls, 1.0), 100);
        assert_eq!(pct_exact(&[], 0.5), 0);
    }

    #[test]
    fn missing_tool_fails_and_speedup_passes() {
        let b = doc(&[("packet", tool(0.5, 4e6, 1000, 3)), ("flow", tool(0.1, 9e6, 500, 3))]);
        let o = doc(&[("packet", tool(0.1, 2e7, 1000, 3))]);
        let err = gate_compare(&b, &o, 25.0).unwrap_err();
        assert!(err.contains("flow") && err.contains("missing"), "{err}");
        let o2 = doc(&[("packet", tool(0.1, 2e7, 1000, 3)), ("flow", tool(0.1, 9e6, 500, 3))]);
        assert!(gate_compare(&b, &o2, 25.0).is_ok(), "a speedup is never a regression");
    }
}
