//! Streamed on-disk trace format ("MASS"): a compact varint-delta
//! encoding with a per-rank segment index, designed so consumers decode
//! one event at a time per rank instead of materializing `Vec<Vec<Event>>`
//! — the memory floor that kept the corpus off Edison/Frontier-class rank
//! counts.
//!
//! ```text
//! magic    b"MASS"             4 bytes
//! version  u32                 format revision (currently 1)
//! meta     app, machine        (u32 len + utf8) × 2
//!          ranks, rpn, size    u32 × 3
//!          seed                u64
//! index    per rank: payload offset u64, byte length u64, event count u64
//! payload  per-rank segments, contiguous and in index order
//! ```
//!
//! Within a rank's segment every event is `tag u8` + LEB128 varints.
//! Durations are varint picoseconds; peers are zigzag deltas from the
//! owning rank; request ids are zigzag deltas from the previously
//! mentioned request (generators issue them sequentially, so deltas are
//! tiny); collective roots are plain varints. A 16-rank stencil trace
//! shrinks ~3.5× versus the fixed-width `MASM` layout, and — the point —
//! the decoder needs only the compact bytes plus one `Event` of state per
//! rank.
//!
//! Every segment is validated once at open time (a decode-and-discard
//! pass), so the per-event cursor path is panic-free without re-checking.

use crate::event::{CollKind, Event, EventKind};
use crate::ids::{Rank, ReqId};
use crate::io::DecodeError;
use crate::io::{get_string, get_u32_le, get_u64_le, put_string, put_u32_le, put_u64_le};
use crate::time::Time;
use crate::trace::{Trace, TraceMeta};
use std::fmt;
use std::path::Path;

/// Current streamed format revision.
pub const STREAM_VERSION: u32 = 1;
const MAGIC: &[u8; 4] = b"MASS";

// Event tag bytes (same order as the MASM codec).
const TAG_COMPUTE: u8 = 0;
const TAG_SEND: u8 = 1;
const TAG_ISEND: u8 = 2;
const TAG_RECV: u8 = 3;
const TAG_IRECV: u8 = 4;
const TAG_WAIT: u8 = 5;
const TAG_WAITALL: u8 = 6;
const TAG_COLL: u8 = 7;

/// Why a streamed trace could not be opened.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StreamError {
    /// Filesystem failure (stringified `io::Error`, kept comparable).
    Io(String),
    /// The bytes are not a well-formed MASS stream.
    Decode(DecodeError),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Io(e) => write!(f, "streamed trace io: {e}"),
            StreamError::Decode(e) => write!(f, "streamed trace: {e}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<DecodeError> for StreamError {
    fn from(e: DecodeError) -> StreamError {
        StreamError::Decode(e)
    }
}

// ---- varint primitives -------------------------------------------------

#[inline]
fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v != 0 {
            buf.push(byte | 0x80);
        } else {
            buf.push(byte);
            return;
        }
    }
}

#[inline]
fn put_signed(buf: &mut Vec<u8>, v: i64) {
    put_varint(buf, ((v << 1) ^ (v >> 63)) as u64);
}

#[inline]
fn get_varint(buf: &mut &[u8]) -> Result<u64, DecodeError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let (&byte, rest) =
            buf.split_first().ok_or(DecodeError::Truncated { context: "varint" })?;
        *buf = rest;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(DecodeError::BadTag(byte));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

#[inline]
fn get_signed(buf: &mut &[u8]) -> Result<i64, DecodeError> {
    let z = get_varint(buf)?;
    Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
}

// ---- encoding ----------------------------------------------------------

/// Encode one rank's event stream as a MASS payload segment.
fn encode_segment(rank: u32, events: &[Event], out: &mut Vec<u8>) {
    let mut prev_req = 0u32;
    let mut req_delta = |buf: &mut Vec<u8>, req: ReqId| {
        put_signed(buf, i64::from(req.0) - i64::from(prev_req));
        prev_req = req.0;
    };
    for e in events {
        match &e.kind {
            EventKind::Compute => {
                out.push(TAG_COMPUTE);
                put_varint(out, e.dur.as_ps());
            }
            EventKind::Send { peer, bytes, tag } => {
                out.push(TAG_SEND);
                put_varint(out, e.dur.as_ps());
                put_signed(out, i64::from(peer.0) - i64::from(rank));
                put_varint(out, *bytes);
                put_varint(out, u64::from(*tag));
            }
            EventKind::Isend { peer, bytes, tag, req } => {
                out.push(TAG_ISEND);
                put_varint(out, e.dur.as_ps());
                put_signed(out, i64::from(peer.0) - i64::from(rank));
                put_varint(out, *bytes);
                put_varint(out, u64::from(*tag));
                req_delta(out, *req);
            }
            EventKind::Recv { peer, bytes, tag } => {
                out.push(TAG_RECV);
                put_varint(out, e.dur.as_ps());
                put_signed(out, i64::from(peer.0) - i64::from(rank));
                put_varint(out, *bytes);
                put_varint(out, u64::from(*tag));
            }
            EventKind::Irecv { peer, bytes, tag, req } => {
                out.push(TAG_IRECV);
                put_varint(out, e.dur.as_ps());
                put_signed(out, i64::from(peer.0) - i64::from(rank));
                put_varint(out, *bytes);
                put_varint(out, u64::from(*tag));
                req_delta(out, *req);
            }
            EventKind::Wait { req } => {
                out.push(TAG_WAIT);
                put_varint(out, e.dur.as_ps());
                req_delta(out, *req);
            }
            EventKind::WaitAll { reqs } => {
                out.push(TAG_WAITALL);
                put_varint(out, e.dur.as_ps());
                put_varint(out, reqs.len() as u64);
                for r in reqs {
                    req_delta(out, *r);
                }
            }
            EventKind::Coll { kind, bytes, root } => {
                out.push(TAG_COLL);
                put_varint(out, e.dur.as_ps());
                out.push(kind.code());
                put_varint(out, *bytes);
                put_varint(out, u64::from(root.0));
            }
        }
    }
}

/// Serialize a trace into the streamed MASS layout.
pub fn encode_stream(trace: &Trace) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + trace.events.len() * 24 + trace.num_events() * 6);
    buf.extend_from_slice(MAGIC);
    put_u32_le(&mut buf, STREAM_VERSION);
    put_string(&mut buf, &trace.meta.app);
    put_string(&mut buf, &trace.meta.machine);
    put_u32_le(&mut buf, trace.meta.ranks);
    put_u32_le(&mut buf, trace.meta.ranks_per_node);
    put_u32_le(&mut buf, trace.meta.problem_size);
    put_u64_le(&mut buf, trace.meta.seed);

    // Index placeholder, patched after the payload is laid down.
    let index_at = buf.len();
    buf.resize(index_at + trace.events.len() * 24, 0);
    let payload_at = buf.len();

    let mut index = Vec::with_capacity(trace.events.len());
    for (r, events) in trace.events.iter().enumerate() {
        let seg_start = buf.len() - payload_at;
        encode_segment(r as u32, events, &mut buf);
        let seg_len = (buf.len() - payload_at) - seg_start;
        index.push((seg_start as u64, seg_len as u64, events.len() as u64));
    }
    for (i, (off, len, count)) in index.into_iter().enumerate() {
        let at = index_at + i * 24;
        buf[at..at + 8].copy_from_slice(&off.to_le_bytes());
        buf[at + 8..at + 16].copy_from_slice(&len.to_le_bytes());
        buf[at + 16..at + 24].copy_from_slice(&count.to_le_bytes());
    }
    buf
}

/// Write a trace to `path` in the streamed MASS layout.
pub fn write_stream(trace: &Trace, path: &Path) -> Result<(), StreamError> {
    std::fs::write(path, encode_stream(trace)).map_err(|e| StreamError::Io(e.to_string()))
}

// ---- decoding ----------------------------------------------------------

/// Decode one event; `rank` and `prev_req` carry the delta bases.
fn decode_event(buf: &mut &[u8], rank: u32, prev_req: &mut u32) -> Result<Event, DecodeError> {
    let (&tag, rest) = buf.split_first().ok_or(DecodeError::Truncated { context: "event tag" })?;
    *buf = rest;
    let dur = Time::from_ps(get_varint(buf)?);
    let peer = |buf: &mut &[u8]| -> Result<Rank, DecodeError> {
        let p = i64::from(rank) + get_signed(buf)?;
        u32::try_from(p).map(Rank).map_err(|_| DecodeError::BadTag(tag))
    };
    let req = |buf: &mut &[u8], prev: &mut u32| -> Result<ReqId, DecodeError> {
        let r = i64::from(*prev) + get_signed(buf)?;
        let r = u32::try_from(r).map_err(|_| DecodeError::BadTag(tag))?;
        *prev = r;
        Ok(ReqId(r))
    };
    let kind = match tag {
        TAG_COMPUTE => EventKind::Compute,
        TAG_SEND => {
            let peer = peer(buf)?;
            EventKind::Send { peer, bytes: get_varint(buf)?, tag: get_varint(buf)? as u32 }
        }
        TAG_ISEND => {
            let peer = peer(buf)?;
            let bytes = get_varint(buf)?;
            let tag = get_varint(buf)? as u32;
            EventKind::Isend { peer, bytes, tag, req: req(buf, prev_req)? }
        }
        TAG_RECV => {
            let peer = peer(buf)?;
            EventKind::Recv { peer, bytes: get_varint(buf)?, tag: get_varint(buf)? as u32 }
        }
        TAG_IRECV => {
            let peer = peer(buf)?;
            let bytes = get_varint(buf)?;
            let tag = get_varint(buf)? as u32;
            EventKind::Irecv { peer, bytes, tag, req: req(buf, prev_req)? }
        }
        TAG_WAIT => EventKind::Wait { req: req(buf, prev_req)? },
        TAG_WAITALL => {
            let n = get_varint(buf)? as usize;
            // Each request delta costs at least one byte.
            if n > buf.len() {
                return Err(DecodeError::Truncated { context: "waitall reqs" });
            }
            let mut reqs = Vec::with_capacity(n);
            for _ in 0..n {
                reqs.push(req(buf, prev_req)?);
            }
            EventKind::WaitAll { reqs }
        }
        TAG_COLL => {
            let (&code, rest) =
                buf.split_first().ok_or(DecodeError::Truncated { context: "coll kind" })?;
            *buf = rest;
            let kind = CollKind::from_code(code).ok_or(DecodeError::BadTag(code))?;
            let bytes = get_varint(buf)?;
            let root = Rank(get_varint(buf)? as u32);
            EventKind::Coll { kind, bytes, root }
        }
        other => return Err(DecodeError::BadTag(other)),
    };
    Ok(Event { kind, dur })
}

/// One rank's entry in the segment index.
#[derive(Clone, Copy, Debug)]
struct Segment {
    /// Byte offset into the payload region.
    off: u64,
    /// Segment length in bytes.
    len: u64,
    /// Number of events encoded in the segment.
    count: u64,
}

/// An opened streamed trace: metadata, index, and the compact payload.
///
/// Holds the encoded bytes — typically 5–10× smaller than the decoded
/// `Vec<Vec<Event>>` — and hands out per-rank [`RankCursor`]s that decode
/// one event at a time.
pub struct StreamedTrace {
    meta: TraceMeta,
    index: Vec<Segment>,
    data: Vec<u8>,
    payload_at: usize,
}

impl StreamedTrace {
    /// Parse and fully validate a MASS byte buffer. Every segment is
    /// decoded once (and discarded) so later cursor reads cannot fail.
    pub fn from_bytes(data: Vec<u8>) -> Result<StreamedTrace, StreamError> {
        let mut buf: &[u8] = &data;
        if buf.len() < 8 {
            return Err(DecodeError::Truncated { context: "header" }.into());
        }
        let (magic, rest) = buf.split_at(4);
        buf = rest;
        if magic != MAGIC {
            return Err(DecodeError::BadMagic.into());
        }
        let version = get_u32_le(&mut buf);
        if version != STREAM_VERSION {
            return Err(DecodeError::BadVersion(version).into());
        }
        let app = get_string(&mut buf)?;
        let machine = get_string(&mut buf)?;
        if buf.len() < 4 * 3 + 8 {
            return Err(DecodeError::Truncated { context: "meta" }.into());
        }
        let ranks = get_u32_le(&mut buf);
        let ranks_per_node = get_u32_le(&mut buf);
        let problem_size = get_u32_le(&mut buf);
        let seed = get_u64_le(&mut buf);
        let meta = TraceMeta { app, machine, ranks, ranks_per_node, problem_size, seed };

        // Allocation guard: the index must physically fit before we size
        // a Vec from an untrusted count.
        if (ranks as usize).checked_mul(24).is_none_or(|need| need > buf.len()) {
            return Err(DecodeError::Truncated { context: "segment index" }.into());
        }
        let mut index = Vec::with_capacity(ranks as usize);
        let mut expect_off = 0u64;
        for _ in 0..ranks {
            let off = get_u64_le(&mut buf);
            let len = get_u64_le(&mut buf);
            let count = get_u64_le(&mut buf);
            if off != expect_off {
                return Err(DecodeError::Truncated { context: "segment order" }.into());
            }
            expect_off =
                off.checked_add(len).ok_or(DecodeError::Truncated { context: "segment span" })?;
            index.push(Segment { off, len, count });
        }
        let payload_at = data.len() - buf.len();
        let payload = buf;
        if expect_off != payload.len() as u64 {
            return Err(DecodeError::TrailingBytes(
                (payload.len() as u64).abs_diff(expect_off) as usize
            )
            .into());
        }

        // Validation pass: each segment must decode exactly `count`
        // events from exactly `len` bytes.
        for (r, seg) in index.iter().enumerate() {
            let mut seg_buf = &payload[seg.off as usize..(seg.off + seg.len) as usize];
            let mut prev_req = 0u32;
            for _ in 0..seg.count {
                decode_event(&mut seg_buf, r as u32, &mut prev_req)?;
            }
            if !seg_buf.is_empty() {
                return Err(DecodeError::TrailingBytes(seg_buf.len()).into());
            }
        }
        Ok(StreamedTrace { meta, index, data, payload_at })
    }

    /// Read and validate a streamed trace from disk.
    pub fn open(path: &Path) -> Result<StreamedTrace, StreamError> {
        let data = std::fs::read(path).map_err(|e| StreamError::Io(e.to_string()))?;
        StreamedTrace::from_bytes(data)
    }

    /// Run metadata.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// World size.
    pub fn num_ranks(&self) -> u32 {
        self.meta.ranks
    }

    /// Total events across all ranks (from the index; nothing decoded).
    pub fn num_events(&self) -> u64 {
        self.index.iter().map(|s| s.count).sum()
    }

    /// Events in one rank's stream.
    pub fn rank_len(&self, rank: Rank) -> usize {
        self.index[rank.idx()].count as usize
    }

    /// Bytes held resident for the encoded trace (header + index +
    /// payload) — the number a memory budget should charge.
    pub fn resident_bytes(&self) -> u64 {
        self.data.len() as u64
    }

    /// A decoding cursor over one rank's stream.
    pub fn cursor(&self, rank: Rank) -> RankCursor<'_> {
        let seg = self.index[rank.idx()];
        let payload = &self.data[self.payload_at..];
        RankCursor {
            buf: &payload[seg.off as usize..(seg.off + seg.len) as usize],
            rank: rank.0,
            total: seg.count as usize,
            decoded: 0,
            prev: None,
            cur: None,
            prev_req: 0,
        }
    }

    /// Decode the whole trace back into the in-memory representation.
    /// Bit-identity with the generator output is asserted by tests.
    pub fn decode_all(&self) -> Trace {
        let events = (0..self.meta.ranks)
            .map(|r| {
                let seg = self.index[r as usize];
                let payload = &self.data[self.payload_at..];
                let mut buf = &payload[seg.off as usize..(seg.off + seg.len) as usize];
                let mut prev_req = 0u32;
                (0..seg.count)
                    .map(|_| decode_event(&mut buf, r, &mut prev_req).expect("validated at open"))
                    .collect()
            })
            .collect();
        Trace { meta: self.meta.clone(), events }
    }
}

impl fmt::Debug for StreamedTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StreamedTrace")
            .field("meta", &self.meta)
            .field("events", &self.num_events())
            .field("bytes", &self.data.len())
            .finish()
    }
}

/// A one-event-at-a-time decoder over a rank's segment.
///
/// Consumers walk a rank's stream with a non-decreasing index, re-reading
/// the current event while the rank is blocked (the runner and mfact
/// retry pattern) and occasionally peeking one event back. The cursor
/// therefore keeps exactly two decoded events of state; anything further
/// back is unreachable by construction and treated as a logic error.
pub struct RankCursor<'a> {
    buf: &'a [u8],
    rank: u32,
    total: usize,
    /// Events decoded so far; `cur` holds event `decoded - 1`.
    decoded: usize,
    prev: Option<Event>,
    cur: Option<Event>,
    prev_req: u32,
}

impl RankCursor<'_> {
    /// Total events in this rank's stream.
    pub fn len(&self) -> usize {
        self.total
    }

    /// True when the stream has no events at all.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The event at index `k`. Returns `None` past the end of the
    /// stream. `k` must be the current event, one before it, or the next
    /// undecoded one — the streaming window.
    pub fn get(&mut self, k: usize) -> Option<&Event> {
        if k >= self.total {
            return None;
        }
        if k + 1 == self.decoded {
            return self.cur.as_ref();
        }
        if k + 2 == self.decoded {
            return self.prev.as_ref();
        }
        assert!(
            k == self.decoded,
            "non-streaming access: asked for event {k} with {} decoded",
            self.decoded
        );
        let ev =
            decode_event(&mut self.buf, self.rank, &mut self.prev_req).expect("validated at open");
        self.prev = self.cur.take();
        self.cur = Some(ev);
        self.decoded += 1;
        self.cur.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let meta = TraceMeta {
            app: "CG".into(),
            machine: "edison".into(),
            ranks: 2,
            ranks_per_node: 2,
            problem_size: 3,
            seed: 42,
        };
        let mut t = Trace::empty(meta);
        t.events[0] = vec![
            Event::compute(Time::from_us(10)),
            Event::new(
                EventKind::Isend { peer: Rank(1), bytes: 4096, tag: 1, req: ReqId(0) },
                Time::from_ns(300),
            ),
            Event::new(
                EventKind::Irecv { peer: Rank(1), bytes: 4096, tag: 2, req: ReqId(1) },
                Time::from_ns(200),
            ),
            Event::new(EventKind::WaitAll { reqs: vec![ReqId(0), ReqId(1)] }, Time::from_us(2)),
            Event::new(
                EventKind::Coll { kind: CollKind::Allreduce, bytes: 8, root: Rank(0) },
                Time::from_us(5),
            ),
        ];
        t.events[1] = vec![
            Event::compute(Time::from_us(11)),
            Event::new(EventKind::Recv { peer: Rank(0), bytes: 4096, tag: 1 }, Time::from_ns(200)),
            Event::new(EventKind::Send { peer: Rank(0), bytes: 4096, tag: 2 }, Time::from_ns(300)),
            Event::new(EventKind::Wait { req: ReqId(7) }, Time::from_us(1)),
            Event::new(
                EventKind::Coll { kind: CollKind::Allreduce, bytes: 8, root: Rank(0) },
                Time::from_us(5),
            ),
        ];
        t
    }

    #[test]
    fn varint_round_trip() {
        let mut buf = Vec::new();
        let vals = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &vals {
            put_varint(&mut buf, v);
        }
        let mut rd: &[u8] = &buf;
        for &v in &vals {
            assert_eq!(get_varint(&mut rd).unwrap(), v);
        }
        assert!(rd.is_empty());

        let mut buf = Vec::new();
        let signed = [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN];
        for &v in &signed {
            put_signed(&mut buf, v);
        }
        let mut rd: &[u8] = &buf;
        for &v in &signed {
            assert_eq!(get_signed(&mut rd).unwrap(), v);
        }
    }

    #[test]
    fn stream_round_trip_is_bit_identical() {
        let t = sample();
        let bytes = encode_stream(&t);
        let st = StreamedTrace::from_bytes(bytes).expect("open");
        assert_eq!(st.num_ranks(), 2);
        assert_eq!(st.num_events(), 10);
        assert_eq!(st.decode_all(), t);
    }

    #[test]
    fn cursor_matches_indexed_access() {
        let t = sample();
        let st = StreamedTrace::from_bytes(encode_stream(&t)).expect("open");
        for r in 0..2u32 {
            let mut c = st.cursor(Rank(r));
            assert_eq!(c.len(), t.events[r as usize].len());
            for (k, want) in t.events[r as usize].iter().enumerate() {
                // Re-reads of the same index must be stable (the blocked
                // rank retry pattern), and one-back peeks must work.
                assert_eq!(c.get(k), Some(want));
                assert_eq!(c.get(k), Some(want));
                if k > 0 {
                    assert_eq!(c.get(k - 1), Some(&t.events[r as usize][k - 1]));
                }
            }
            assert_eq!(c.get(c.len()), None);
        }
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let bytes = encode_stream(&sample());
        for cut in 0..bytes.len() {
            assert!(
                StreamedTrace::from_bytes(bytes[..cut].to_vec()).is_err(),
                "prefix of {cut} bytes unexpectedly opened"
            );
        }
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let mut b = encode_stream(&sample());
        b[0] = b'X';
        assert!(matches!(
            StreamedTrace::from_bytes(b),
            Err(StreamError::Decode(DecodeError::BadMagic))
        ));
        let mut b = encode_stream(&sample());
        b[4] = 9;
        assert!(matches!(
            StreamedTrace::from_bytes(b),
            Err(StreamError::Decode(DecodeError::BadVersion(9)))
        ));
    }

    #[test]
    fn corrupt_payload_rejected_at_open() {
        let good = encode_stream(&sample());
        // Flip every payload byte in turn; open must never panic, and
        // either rejects the buffer or yields a decodable (different)
        // trace — silent acceptance of a *shorter* segment is impossible
        // because lengths and counts are cross-checked.
        let mut rejected = 0;
        for i in 0..good.len() {
            let mut b = good.clone();
            b[i] ^= 0xff;
            if StreamedTrace::from_bytes(b).is_err() {
                rejected += 1;
            }
        }
        assert!(rejected > good.len() / 2, "only {rejected}/{} flips rejected", good.len());
    }

    #[test]
    fn file_round_trip() {
        let t = sample();
        let dir = std::env::temp_dir().join("masim_stream_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.mass");
        write_stream(&t, &path).expect("write");
        let st = StreamedTrace::open(&path).expect("open");
        assert_eq!(st.decode_all(), t);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compactness_beats_fixed_width() {
        let t = sample();
        let streamed = encode_stream(&t).len();
        let fixed = crate::io::encode(&t).len();
        assert!(streamed < fixed, "streamed {streamed}B >= fixed {fixed}B");
    }
}
