//! Irregular-communication applications: Crystal Router, FillBoundary,
//! and NPB DT.
//!
//! These are the traces where the paper finds simulation genuinely
//! necessary: CR and FB show more than 20 % DIFFtotal because their
//! "irregular and intensive communication patterns" (Figure 4's caption
//! discussion) hit shared links in ways a contention-free model cannot
//! see.

use crate::apps::{per_rank_volume, size_mult, stamp_contention};
use crate::config::GenConfig;
use crate::synth::TraceSynth;
use masim_trace::{CollKind, Rank, Trace};

/// Crystal Router: the Nek5000 generalized all-to-all kernel.
///
/// Messages route through `log2(P)` hypercube stages; at stage `d` every
/// rank exchanges its accumulated payload with partner `r XOR 2^d`. The
/// payloads are data-dependent and irregular (±50 % around the mean),
/// and high stages pair ranks that are far apart on any physical
/// topology — maximal link sharing.
pub fn cr(cfg: &GenConfig) -> Trace {
    assert!(cfg.ranks.is_power_of_two(), "CR world must be a power of two");
    let stages = cfg.ranks.trailing_zeros();
    let base = per_rank_volume(8 * 1024 * size_mult(cfg.size).min(4), cfg.ranks);
    let mut s = TraceSynth::new(cfg.clone(), stamp_contention(cfg.app));
    s.coll_all(CollKind::Bcast, 128, Rank(0));
    for round in 0..cfg.iters {
        s.compute_round();
        for d in 0..stages {
            let bit = 1u32 << d;
            let mut edges = Vec::with_capacity(cfg.ranks as usize / 2);
            for r in 0..cfg.ranks {
                let partner = r ^ bit;
                if r < partner {
                    let u: f64 = s.rng().next_f64();
                    let bytes = ((base as f64) * (0.5 + u)) as u64;
                    edges.push((r, partner, bytes.max(64)));
                }
            }
            s.symmetric_exchange(&edges, round * 32 + d);
        }
    }
    s.barrier_all();
    s.finish()
}

/// FillBoundary: the BoxLib/AMReX ghost-cell fill.
///
/// Each rank owns a set of AMR boxes whose neighbor lists are irregular
/// in both degree (2–14 partners) and payload (two decades of spread).
/// Degree and volume also differ *per rank*, which adds the load
/// imbalance the paper observes. The box graph is fixed at setup and
/// re-exchanged every step.
pub fn fill_boundary(cfg: &GenConfig) -> Trace {
    let base = per_rank_volume(2 * 1024 * size_mult(cfg.size).min(2), cfg.ranks);
    let mut s = TraceSynth::new(cfg.clone(), stamp_contention(cfg.app));

    // Build the irregular box-neighbor graph once, deterministically.
    let mut edges: Vec<(u32, u32, u64)> = Vec::new();
    for r in 0..cfg.ranks {
        let degree = 2 + (s.rng().next_u32() % 7);
        for _ in 0..degree {
            // Mix of near neighbors (AMR locality) and far refinement
            // partners.
            let near: bool = s.rng().next_f64() < 0.7;
            let peer = if near {
                let off = 1 + (s.rng().next_u32() % 4);
                (r + off) % cfg.ranks
            } else {
                // Refinement partners: spatially local in the AMR sense
                // (a few dozen ranks away), not uniformly random — this
                // is what keeps real FB hotspots bounded.
                let off = 5 + (s.rng().next_u32() % 64);
                (r + off) % cfg.ranks
            };
            if peer == r {
                continue;
            }
            // Payload spread over two decades.
            let mag = s.rng().next_f64();
            let bytes = ((base as f64) * 0.01f64.max(mag * mag)) as u64;
            edges.push((r.min(peer), r.max(peer), bytes.max(64)));
        }
    }
    edges.sort_unstable();
    edges.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);

    s.coll_all(CollKind::Allgather, 32, Rank(0)); // box metadata digest
    for _ in 0..cfg.iters {
        s.compute_round();
        s.symmetric_exchange(&edges, 1);
        s.compute_round();
        s.symmetric_exchange(&edges, 2);
        s.coll_all(CollKind::Reduce, 32, Rank(0));
    }
    s.finish()
}

/// NPB DT: data traffic over a task graph.
///
/// Sources feed large messages through a binary reduction tree to a
/// sink: leaves send to their parents, inner nodes aggregate and
/// forward. Communication is blocking and bandwidth-heavy but the run is
/// short — the paper excludes DT from the timing study for exactly that
/// reason (sub-second runs).
pub fn dt(cfg: &GenConfig) -> Trace {
    let msg = per_rank_volume(512 * 1024 * size_mult(cfg.size), cfg.ranks);
    let mut s = TraceSynth::new(cfg.clone(), stamp_contention(cfg.app));
    s.coll_all(CollKind::Bcast, 64, Rank(0));
    let n = cfg.ranks;
    for round in 0..cfg.iters {
        s.compute_round();
        // Children send to parent ((r-1)/2), processed bottom-up so the
        // trace records parents receiving in child order.
        for r in (1..n).rev() {
            let parent = (r - 1) / 2;
            s.send(Rank(r), Rank(parent), msg, round);
        }
        for r in 0..n {
            let left = 2 * r + 1;
            let right = 2 * r + 2;
            if left < n {
                s.recv(Rank(r), Rank(left), msg, round);
            }
            if right < n {
                s.recv(Rank(r), Rank(right), msg, round);
            }
        }
    }
    s.coll_all(CollKind::Reduce, 16, Rank(0));
    s.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::App;
    use masim_trace::{EventKind, Features};

    #[test]
    fn cr_hypercube_partners() {
        let cfg = GenConfig::test_default(App::Cr, 16);
        let t = cr(&cfg);
        assert_eq!(t.validate(), Ok(()));
        // Rank 0 exchanges with 1, 2, 4, 8 each iteration.
        let peers: std::collections::HashSet<u32> = t.events[0]
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Isend { peer, .. } => Some(peer.0),
                _ => None,
            })
            .collect();
        assert_eq!(peers, [1u32, 2, 4, 8].into_iter().collect());
    }

    #[test]
    fn cr_sizes_are_irregular() {
        let cfg = GenConfig::test_default(App::Cr, 16);
        let t = cr(&cfg);
        let sizes: Vec<u64> = t
            .events
            .iter()
            .flatten()
            .filter_map(|e| match e.kind {
                EventKind::Isend { bytes, .. } => Some(bytes),
                _ => None,
            })
            .collect();
        let max = *sizes.iter().max().unwrap() as f64;
        let min = *sizes.iter().min().unwrap() as f64;
        assert!(max / min > 1.5, "CR payload spread {max}/{min}");
    }

    #[test]
    fn fb_degree_is_irregular() {
        let cfg = GenConfig::test_default(App::FillBoundary, 32);
        let t = fill_boundary(&cfg);
        assert_eq!(t.validate(), Ok(()));
        // Per-rank distinct-peer counts must vary.
        let f = Features::extract(&t);
        assert!(f.cr > 2.0, "mean fan-out {}", f.cr);
        let degree = |r: usize| -> usize {
            t.events[r]
                .iter()
                .filter_map(|e| match e.kind {
                    EventKind::Isend { peer, .. } => Some(peer.0),
                    _ => None,
                })
                .collect::<std::collections::HashSet<_>>()
                .len()
        };
        let degrees: Vec<usize> = (0..32).map(degree).collect();
        assert!(degrees.iter().max() > degrees.iter().min(), "uniform degrees {degrees:?}");
    }

    #[test]
    fn dt_tree_flows_to_root() {
        let cfg = GenConfig::test_default(App::Dt, 7);
        let t = dt(&cfg);
        assert_eq!(t.validate(), Ok(()));
        // Root (0) only receives; leaves only send.
        let root_sends =
            t.events[0].iter().filter(|e| matches!(e.kind, EventKind::Send { .. })).count();
        assert_eq!(root_sends, 0);
        let leaf_recvs =
            t.events[6].iter().filter(|e| matches!(e.kind, EventKind::Recv { .. })).count();
        assert_eq!(leaf_recvs, 0);
    }

    #[test]
    fn dt_messages_are_large() {
        let cfg = GenConfig::test_default(App::Dt, 7);
        let t = dt(&cfg);
        for e in t.events.iter().flatten() {
            if let EventKind::Send { bytes, .. } = e.kind {
                assert!(bytes >= 64 * 1024, "DT message small: {bytes}");
            }
        }
    }
}
