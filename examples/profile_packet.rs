//! Scratch profiling driver: packet-model throughput on CG(64).

use masim_sim::{simulate, ModelKind, SimConfig};
use masim_workloads::{generate, App, GenConfig};
use std::time::Instant;

fn main() {
    let cfg = GenConfig::test_default(App::Cg, 64);
    let trace = generate(&cfg);
    let machine = masim_topo::Machine::cielito();
    let sc = SimConfig::new(machine, ModelKind::Packet { packet_bytes: 1024 }, &trace);
    // Warm-up (and counter dump).
    let ms = masim_obs::MetricSet::new();
    let r = masim_sim::simulate_observed(&trace, &sc, u64::MAX, &ms).expect("unbudgeted");
    eprintln!("events={} messages={} work={}", r.events, r.messages, r.work_units);
    for (k, v) in ms.snapshot().counters {
        eprintln!("  {k} = {v}");
    }
    let n = 20;
    let t0 = Instant::now();
    let mut acc = 0u64;
    for _ in 0..n {
        acc += simulate(&trace, &sc).events;
    }
    let dt = t0.elapsed();
    eprintln!(
        "{} runs in {:?} -> {:.2}ms/run, {:.2}M events/s (acc {})",
        n,
        dt,
        dt.as_secs_f64() * 1e3 / n as f64,
        (acc as f64) / dt.as_secs_f64() / 1e6,
        acc
    );
}
