//! Trace serialization: a compact binary format plus a line-oriented text
//! format for inspection.
//!
//! The binary layout is little-endian and length-prefixed throughout:
//!
//! ```text
//! magic   b"MASM"            4 bytes
//! version u32                format revision (currently 1)
//! meta    app, machine       (u32 len + utf8) × 2
//!         ranks, rpn, size   u32 × 3
//!         seed               u64
//! streams per rank: u64 event count, then events
//! event   tag u8, dur u64, payload per kind
//! ```
//!
//! The format deliberately has no backward-compat shims: the version is
//! checked and a mismatch is an error, which is the honest behaviour for
//! an internal research format.

use crate::event::{CollKind, Event, EventKind};
use crate::ids::{Rank, ReqId};
use crate::time::Time;
use crate::trace::{Trace, TraceMeta};
use std::fmt;

/// Current binary format revision.
pub const FORMAT_VERSION: u32 = 1;
const MAGIC: &[u8; 4] = b"MASM";

/// Decoding failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// Buffer does not start with the `MASM` magic.
    BadMagic,
    /// Format revision not understood.
    BadVersion(u32),
    /// Buffer ended mid-record; `context` names the record being read.
    Truncated {
        /// What was being decoded when the buffer ran out.
        context: &'static str,
    },
    /// A string field is not valid UTF-8.
    BadUtf8,
    /// Unknown event or collective tag byte.
    BadTag(u8),
    /// Trailing garbage after the last stream.
    TrailingBytes(usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a masim trace (bad magic)"),
            DecodeError::BadVersion(v) => write!(f, "unsupported trace format version {v}"),
            DecodeError::Truncated { context } => {
                write!(f, "trace truncated while reading {context}")
            }
            DecodeError::BadUtf8 => write!(f, "non-UTF-8 string field"),
            DecodeError::BadTag(t) => write!(f, "unknown record tag {t}"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after trace"),
        }
    }
}

impl std::error::Error for DecodeError {}

// Event tag bytes.
const TAG_COMPUTE: u8 = 0;
const TAG_SEND: u8 = 1;
const TAG_ISEND: u8 = 2;
const TAG_RECV: u8 = 3;
const TAG_IRECV: u8 = 4;
const TAG_WAIT: u8 = 5;
const TAG_WAITALL: u8 = 6;
const TAG_COLL: u8 = 7;

// Little-endian writer helpers over a plain Vec<u8>. Shared with the
// streamed format in `crate::stream`.
#[inline]
fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}
#[inline]
pub(crate) fn put_u32_le(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}
#[inline]
pub(crate) fn put_u64_le(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

// Reader helpers over `&mut &[u8]`. Callers bounds-check with
// `buf.len()` before calling; these panic only on internal logic errors.
#[inline]
fn get_u8(buf: &mut &[u8]) -> u8 {
    let (head, rest) = buf.split_at(1);
    *buf = rest;
    head[0]
}
#[inline]
pub(crate) fn get_u32_le(buf: &mut &[u8]) -> u32 {
    let (head, rest) = buf.split_at(4);
    *buf = rest;
    u32::from_le_bytes(head.try_into().expect("4-byte slice"))
}
#[inline]
pub(crate) fn get_u64_le(buf: &mut &[u8]) -> u64 {
    let (head, rest) = buf.split_at(8);
    *buf = rest;
    u64::from_le_bytes(head.try_into().expect("8-byte slice"))
}

/// Serialize a trace to its binary form.
pub fn encode(trace: &Trace) -> Vec<u8> {
    // Rough pre-size: 16 bytes/event average avoids most reallocation.
    let mut buf = Vec::with_capacity(64 + trace.num_events() * 16);
    buf.extend_from_slice(MAGIC);
    put_u32_le(&mut buf, FORMAT_VERSION);
    put_string(&mut buf, &trace.meta.app);
    put_string(&mut buf, &trace.meta.machine);
    put_u32_le(&mut buf, trace.meta.ranks);
    put_u32_le(&mut buf, trace.meta.ranks_per_node);
    put_u32_le(&mut buf, trace.meta.problem_size);
    put_u64_le(&mut buf, trace.meta.seed);
    for stream in &trace.events {
        put_u64_le(&mut buf, stream.len() as u64);
        for e in stream {
            put_event(&mut buf, e);
        }
    }
    buf
}

/// Deserialize a trace from its binary form.
pub fn decode(mut buf: &[u8]) -> Result<Trace, DecodeError> {
    if buf.len() < 8 {
        return Err(DecodeError::Truncated { context: "header" });
    }
    let (magic, rest) = buf.split_at(4);
    buf = rest;
    if magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = get_u32_le(&mut buf);
    if version != FORMAT_VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let app = get_string(&mut buf)?;
    let machine = get_string(&mut buf)?;
    if buf.len() < 4 * 3 + 8 {
        return Err(DecodeError::Truncated { context: "meta" });
    }
    let ranks = get_u32_le(&mut buf);
    let ranks_per_node = get_u32_le(&mut buf);
    let problem_size = get_u32_le(&mut buf);
    let seed = get_u64_le(&mut buf);
    let meta = TraceMeta { app, machine, ranks, ranks_per_node, problem_size, seed };

    // Capacity checks before the allocations: a corrupt count field must
    // become a typed error, not an allocator abort. Every stream costs at
    // least its 8-byte length field and every event at least a 9-byte
    // header, so counts the remaining buffer cannot hold are truncations.
    if ranks as usize > buf.len() / 8 {
        return Err(DecodeError::Truncated { context: "rank streams" });
    }
    let mut events = Vec::with_capacity(ranks as usize);
    for _ in 0..ranks {
        if buf.len() < 8 {
            return Err(DecodeError::Truncated { context: "stream length" });
        }
        let n = get_u64_le(&mut buf) as usize;
        if n > buf.len() / 9 {
            return Err(DecodeError::Truncated { context: "event stream" });
        }
        let mut stream = Vec::with_capacity(n);
        for _ in 0..n {
            stream.push(get_event(&mut buf)?);
        }
        events.push(stream);
    }
    if !buf.is_empty() {
        return Err(DecodeError::TrailingBytes(buf.len()));
    }
    Ok(Trace { meta, events })
}

pub(crate) fn put_string(buf: &mut Vec<u8>, s: &str) {
    put_u32_le(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

pub(crate) fn get_string(buf: &mut &[u8]) -> Result<String, DecodeError> {
    if buf.len() < 4 {
        return Err(DecodeError::Truncated { context: "string length" });
    }
    let len = get_u32_le(buf) as usize;
    if buf.len() < len {
        return Err(DecodeError::Truncated { context: "string body" });
    }
    let (body, rest) = buf.split_at(len);
    *buf = rest;
    String::from_utf8(body.to_vec()).map_err(|_| DecodeError::BadUtf8)
}

fn put_event(buf: &mut Vec<u8>, e: &Event) {
    match &e.kind {
        EventKind::Compute => {
            put_u8(buf, TAG_COMPUTE);
            put_u64_le(buf, e.dur.as_ps());
        }
        EventKind::Send { peer, bytes, tag } => {
            put_u8(buf, TAG_SEND);
            put_u64_le(buf, e.dur.as_ps());
            put_u32_le(buf, peer.0);
            put_u64_le(buf, *bytes);
            put_u32_le(buf, *tag);
        }
        EventKind::Isend { peer, bytes, tag, req } => {
            put_u8(buf, TAG_ISEND);
            put_u64_le(buf, e.dur.as_ps());
            put_u32_le(buf, peer.0);
            put_u64_le(buf, *bytes);
            put_u32_le(buf, *tag);
            put_u32_le(buf, req.0);
        }
        EventKind::Recv { peer, bytes, tag } => {
            put_u8(buf, TAG_RECV);
            put_u64_le(buf, e.dur.as_ps());
            put_u32_le(buf, peer.0);
            put_u64_le(buf, *bytes);
            put_u32_le(buf, *tag);
        }
        EventKind::Irecv { peer, bytes, tag, req } => {
            put_u8(buf, TAG_IRECV);
            put_u64_le(buf, e.dur.as_ps());
            put_u32_le(buf, peer.0);
            put_u64_le(buf, *bytes);
            put_u32_le(buf, *tag);
            put_u32_le(buf, req.0);
        }
        EventKind::Wait { req } => {
            put_u8(buf, TAG_WAIT);
            put_u64_le(buf, e.dur.as_ps());
            put_u32_le(buf, req.0);
        }
        EventKind::WaitAll { reqs } => {
            put_u8(buf, TAG_WAITALL);
            put_u64_le(buf, e.dur.as_ps());
            put_u32_le(buf, reqs.len() as u32);
            for r in reqs {
                put_u32_le(buf, r.0);
            }
        }
        EventKind::Coll { kind, bytes, root } => {
            put_u8(buf, TAG_COLL);
            put_u64_le(buf, e.dur.as_ps());
            put_u8(buf, kind.code());
            put_u64_le(buf, *bytes);
            put_u32_le(buf, root.0);
        }
    }
}

fn get_event(buf: &mut &[u8]) -> Result<Event, DecodeError> {
    if buf.len() < 9 {
        return Err(DecodeError::Truncated { context: "event header" });
    }
    let tag = get_u8(buf);
    let dur = Time::from_ps(get_u64_le(buf));
    let need = |buf: &&[u8], n: usize, ctx: &'static str| {
        if buf.len() < n {
            Err(DecodeError::Truncated { context: ctx })
        } else {
            Ok(())
        }
    };
    let kind = match tag {
        TAG_COMPUTE => EventKind::Compute,
        TAG_SEND => {
            need(buf, 16, "send")?;
            let peer = Rank(get_u32_le(buf));
            let bytes = get_u64_le(buf);
            let tag = get_u32_le(buf);
            EventKind::Send { peer, bytes, tag }
        }
        TAG_ISEND => {
            need(buf, 20, "isend")?;
            let peer = Rank(get_u32_le(buf));
            let bytes = get_u64_le(buf);
            let tag = get_u32_le(buf);
            let req = ReqId(get_u32_le(buf));
            EventKind::Isend { peer, bytes, tag, req }
        }
        TAG_RECV => {
            need(buf, 16, "recv")?;
            let peer = Rank(get_u32_le(buf));
            let bytes = get_u64_le(buf);
            let tag = get_u32_le(buf);
            EventKind::Recv { peer, bytes, tag }
        }
        TAG_IRECV => {
            need(buf, 20, "irecv")?;
            let peer = Rank(get_u32_le(buf));
            let bytes = get_u64_le(buf);
            let tag = get_u32_le(buf);
            let req = ReqId(get_u32_le(buf));
            EventKind::Irecv { peer, bytes, tag, req }
        }
        TAG_WAIT => {
            need(buf, 4, "wait")?;
            EventKind::Wait { req: ReqId(get_u32_le(buf)) }
        }
        TAG_WAITALL => {
            need(buf, 4, "waitall count")?;
            let n = get_u32_le(buf) as usize;
            need(buf, n * 4, "waitall reqs")?;
            let reqs = (0..n).map(|_| ReqId(get_u32_le(buf))).collect();
            EventKind::WaitAll { reqs }
        }
        TAG_COLL => {
            need(buf, 13, "collective")?;
            let kind = CollKind::from_code(get_u8(buf)).ok_or(DecodeError::BadTag(255))?;
            let bytes = get_u64_le(buf);
            let root = Rank(get_u32_le(buf));
            EventKind::Coll { kind, bytes, root }
        }
        other => return Err(DecodeError::BadTag(other)),
    };
    Ok(Event { kind, dur })
}

/// Render a trace in the line-oriented text form (one event per line),
/// mirroring `dumpi2ascii` output. Intended for debugging and examples,
/// not as an interchange format.
pub fn to_text(trace: &Trace) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let m = &trace.meta;
    let _ = writeln!(
        out,
        "# masim trace: app={} machine={} ranks={} rpn={} size={} seed={}",
        m.app, m.machine, m.ranks, m.ranks_per_node, m.problem_size, m.seed
    );
    for (r, stream) in trace.events.iter().enumerate() {
        for e in stream {
            let _ = write!(out, "r{r} {} ", e.dur);
            let _ = match &e.kind {
                EventKind::Compute => writeln!(out, "compute"),
                EventKind::Send { peer, bytes, tag } => {
                    writeln!(out, "send -> {peer} {bytes}B tag={tag}")
                }
                EventKind::Isend { peer, bytes, tag, req } => {
                    writeln!(out, "isend -> {peer} {bytes}B tag={tag} {req}")
                }
                EventKind::Recv { peer, bytes, tag } => {
                    writeln!(out, "recv <- {peer} {bytes}B tag={tag}")
                }
                EventKind::Irecv { peer, bytes, tag, req } => {
                    writeln!(out, "irecv <- {peer} {bytes}B tag={tag} {req}")
                }
                EventKind::Wait { req } => writeln!(out, "wait {req}"),
                EventKind::WaitAll { reqs } => writeln!(out, "waitall x{}", reqs.len()),
                EventKind::Coll { kind, bytes, root } => {
                    writeln!(out, "coll {kind} {bytes}B root={root}")
                }
            };
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let meta = TraceMeta {
            app: "CG".into(),
            machine: "edison".into(),
            ranks: 2,
            ranks_per_node: 2,
            problem_size: 3,
            seed: 42,
        };
        let mut t = Trace::empty(meta);
        t.events[0] = vec![
            Event::compute(Time::from_us(10)),
            Event::new(
                EventKind::Isend { peer: Rank(1), bytes: 4096, tag: 1, req: ReqId(0) },
                Time::from_ns(300),
            ),
            Event::new(
                EventKind::Irecv { peer: Rank(1), bytes: 4096, tag: 2, req: ReqId(1) },
                Time::from_ns(200),
            ),
            Event::new(EventKind::WaitAll { reqs: vec![ReqId(0), ReqId(1)] }, Time::from_us(2)),
            Event::new(
                EventKind::Coll { kind: CollKind::Allreduce, bytes: 8, root: Rank(0) },
                Time::from_us(5),
            ),
        ];
        t.events[1] = vec![
            Event::compute(Time::from_us(11)),
            Event::new(
                EventKind::Irecv { peer: Rank(0), bytes: 4096, tag: 1, req: ReqId(0) },
                Time::from_ns(200),
            ),
            Event::new(
                EventKind::Isend { peer: Rank(0), bytes: 4096, tag: 2, req: ReqId(1) },
                Time::from_ns(300),
            ),
            Event::new(EventKind::Wait { req: ReqId(0) }, Time::from_us(1)),
            Event::new(EventKind::Wait { req: ReqId(1) }, Time::from_us(1)),
            Event::new(
                EventKind::Coll { kind: CollKind::Allreduce, bytes: 8, root: Rank(0) },
                Time::from_us(5),
            ),
        ];
        t
    }

    #[test]
    fn round_trip() {
        let t = sample();
        let bytes = encode(&t);
        let t2 = decode(&bytes).expect("decode");
        assert_eq!(t, t2);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode(&sample()).to_vec();
        bytes[0] = b'X';
        assert_eq!(decode(&bytes), Err(DecodeError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = encode(&sample()).to_vec();
        bytes[4] = 99;
        assert!(matches!(decode(&bytes), Err(DecodeError::BadVersion(_))));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let bytes = encode(&sample()).to_vec();
        // Every proper prefix must fail cleanly, never panic.
        for cut in 0..bytes.len() {
            let r = decode(&bytes[..cut]);
            assert!(r.is_err(), "prefix of {cut} bytes unexpectedly decoded");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode(&sample()).to_vec();
        bytes.push(0);
        assert_eq!(decode(&bytes), Err(DecodeError::TrailingBytes(1)));
    }

    #[test]
    fn unknown_tag_rejected() {
        let t = sample();
        let mut bytes = encode(&t).to_vec();
        // First event tag byte sits right after header+meta; find it by
        // re-encoding an empty trace of the same meta and using its length.
        let empty = Trace::empty(t.meta.clone());
        let off = encode(&empty).len() - 2 * 8 + 8; // after rank0's count
        bytes[off] = 250;
        assert!(matches!(decode(&bytes), Err(DecodeError::BadTag(250))));
    }

    #[test]
    fn text_rendering_mentions_all_events() {
        let txt = to_text(&sample());
        for needle in ["compute", "isend", "irecv", "waitall", "wait", "Allreduce", "# masim trace"]
        {
            assert!(txt.contains(needle), "missing {needle} in text dump:\n{txt}");
        }
    }
}
